//! Replayable execution traces.
//!
//! A gated run is a deterministic function of `(instance, protocol,
//! seed, grant sequence)`; the grant sequence — which agent the
//! scheduler picked at each tick — is therefore a complete witness of
//! the execution. A [`Trace`] packages that schedule together with the
//! per-primitive event log (what each grant was spent on: a move, a
//! board read, a write with the posted sign kinds, or a wait) and
//! enough instance metadata to detect mismatched replays.
//!
//! Traces serialize to a small hand-rolled JSON dialect (the workspace
//! is offline and carries no serde), so counterexample schedules can be
//! committed under `tests/traces/` and replayed bit-for-bit by
//! [`ReplayScheduler`](crate::sched::ReplayScheduler) in regression
//! tests.

use crate::json;
use crate::sign::SignKind;
use std::fmt;
use std::path::Path;

/// Offset distinguishing [`SignKind::Custom`] codes from built-in kinds.
const CUSTOM_CODE_BASE: u32 = 1000;

/// Stable numeric code of a sign kind, for trace serialization.
pub fn sign_kind_code(kind: SignKind) -> u32 {
    match kind {
        SignKind::HomeBase => 0,
        SignKind::Visited => 1,
        SignKind::Sync => 2,
        SignKind::Match => 3,
        SignKind::VisitDone => 4,
        SignKind::RoundDone => 5,
        SignKind::Acquired => 6,
        SignKind::Leader => 7,
        SignKind::Unsolvable => 8,
        SignKind::Custom(x) => CUSTOM_CODE_BASE + x as u32,
    }
}

/// Inverse of [`sign_kind_code`].
pub fn sign_kind_from_code(code: u32) -> Option<SignKind> {
    Some(match code {
        0 => SignKind::HomeBase,
        1 => SignKind::Visited,
        2 => SignKind::Sync,
        3 => SignKind::Match,
        4 => SignKind::VisitDone,
        5 => SignKind::RoundDone,
        6 => SignKind::Acquired,
        7 => SignKind::Leader,
        8 => SignKind::Unsolvable,
        c if c >= CUSTOM_CODE_BASE && c - CUSTOM_CODE_BASE <= u16::MAX as u32 => {
            SignKind::Custom((c - CUSTOM_CODE_BASE) as u16)
        }
        _ => return None,
    })
}

/// What a granted primitive did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimOp {
    /// An edge traversal.
    Move {
        /// Node departed from.
        from: usize,
        /// Node arrived at.
        to: usize,
    },
    /// A whiteboard read.
    Read {
        /// The node whose board was read.
        node: usize,
    },
    /// An atomic read-modify-write of a whiteboard.
    Write {
        /// The node whose board was accessed.
        node: usize,
        /// [`sign_kind_code`]s of signs the closure posted (empty for a
        /// pure read-modify that added nothing).
        posted: Vec<u32>,
    },
    /// A granted wait re-check.
    Wait {
        /// The node waited at.
        node: usize,
        /// Whether the predicate held (the wait completed).
        woke: bool,
    },
}

/// One granted primitive: who ran at which tick, doing what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// The scheduler tick (1-based grant counter) this op was granted at.
    pub tick: u64,
    /// The agent that ran.
    pub agent: usize,
    /// The primitive performed.
    pub op: PrimOp,
}

/// A recorded (or hand-written) execution witness.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Free-form description (e.g. `"c6 lockstep double election"`).
    pub label: String,
    /// The run seed (colors, port scrambles).
    pub seed: u64,
    /// Name of the policy that produced the schedule.
    pub policy: String,
    /// Number of agents in the run.
    pub agents: usize,
    /// Number of nodes in the instance.
    pub nodes: usize,
    /// Agent index granted at each tick — the replayable core.
    pub schedule: Vec<usize>,
    /// Per-primitive events (may be empty for hand-written traces).
    pub events: Vec<TraceEvent>,
}

/// Error parsing or loading a trace.
#[derive(Debug)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// A strict [`ReplayScheduler`](crate::sched::ReplayScheduler) for
    /// this trace (panics on divergence).
    pub fn replayer_strict(&self) -> crate::sched::ReplayScheduler {
        crate::sched::ReplayScheduler::strict(self.schedule.clone())
    }

    /// A lenient replayer: on divergence it falls back to the lowest
    /// ready agent and records the first divergent tick.
    pub fn replayer(&self) -> crate::sched::ReplayScheduler {
        crate::sched::ReplayScheduler::new(self.schedule.clone())
    }

    /// Serialize to the trace JSON dialect.
    ///
    /// Emits both the shared envelope `schema` tag
    /// ([`json::envelope::TRACE`]) and the original `version` field, so
    /// traces written by this build still parse under pre-envelope
    /// readers.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 4 * self.schedule.len());
        out.push_str("{\n");
        out.push_str(&json::envelope::header(json::envelope::TRACE));
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"label\": {},\n", json::escape(&self.label)));
        // Seeds use the full u64 range; JSON numbers only cover 2^53,
        // so the seed travels as a decimal string.
        out.push_str(&format!("  \"seed\": \"{}\",\n", self.seed));
        out.push_str(&format!("  \"policy\": {},\n", json::escape(&self.policy)));
        out.push_str(&format!("  \"agents\": {},\n", self.agents));
        out.push_str(&format!("  \"nodes\": {},\n", self.nodes));
        out.push_str("  \"schedule\": [");
        for (i, a) in self.schedule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&a.to_string());
        }
        out.push_str("],\n");
        out.push_str("  \"events\": [\n");
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&event_to_json(ev));
            if i + 1 < self.events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the trace JSON dialect.
    ///
    /// Accepts both the enveloped form (`"schema": "qelect-trace/1"`)
    /// and the grandfathered legacy form (`"version": 1`, no schema).
    pub fn from_json(text: &str) -> Result<Trace, TraceError> {
        let value = json::parse(text).map_err(TraceError)?;
        let obj = value
            .as_object()
            .ok_or_else(|| bad("top level must be an object"))?;
        json::envelope::check(obj, json::envelope::TRACE).map_err(TraceError)?;
        let label = get_str(obj, "label").unwrap_or_default();
        let seed = match json::get(obj, "seed") {
            Some(json::Value::Str(s)) => s
                .parse::<u64>()
                .map_err(|_| bad("seed must be a decimal u64 string"))?,
            Some(json::Value::Num(n)) => *n as u64,
            _ => 0,
        };
        let policy = get_str(obj, "policy").unwrap_or_default();
        let agents = get_usize(obj, "agents")?;
        let nodes = get_usize(obj, "nodes")?;
        let schedule = match json::get(obj, "schedule") {
            Some(json::Value::Arr(items)) => items
                .iter()
                .map(|v| {
                    v.as_num()
                        .map(|n| n as usize)
                        .ok_or_else(|| bad("schedule entries must be numbers"))
                })
                .collect::<Result<Vec<usize>, TraceError>>()?,
            _ => return Err(bad("missing 'schedule' array")),
        };
        let mut events = Vec::new();
        if let Some(json::Value::Arr(items)) = json::get(obj, "events") {
            for item in items {
                events.push(event_from_json(item)?);
            }
        }
        Ok(Trace {
            label,
            seed,
            policy,
            agents,
            nodes,
            schedule,
            events,
        })
    }

    /// Write the trace (as JSON) to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        std::fs::write(path.as_ref(), self.to_json())
            .map_err(|e| bad(format!("writing {}: {e}", path.as_ref().display())))
    }

    /// Load a trace (as JSON) from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Trace, TraceError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| bad(format!("reading {}: {e}", path.as_ref().display())))?;
        Trace::from_json(&text)
    }
}

fn bad(msg: impl Into<String>) -> TraceError {
    TraceError(msg.into())
}

fn get_str(obj: &[(String, json::Value)], key: &str) -> Option<String> {
    match json::get(obj, key) {
        Some(json::Value::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn get_usize(obj: &[(String, json::Value)], key: &str) -> Result<usize, TraceError> {
    match json::get(obj, key) {
        Some(json::Value::Num(n)) => Ok(*n as usize),
        _ => Err(bad(format!("missing numeric '{key}'"))),
    }
}

fn event_to_json(ev: &TraceEvent) -> String {
    let head = format!("{{\"tick\":{},\"agent\":{},", ev.tick, ev.agent);
    match &ev.op {
        PrimOp::Move { from, to } => {
            format!("{head}\"op\":\"move\",\"from\":{from},\"to\":{to}}}")
        }
        PrimOp::Read { node } => format!("{head}\"op\":\"read\",\"node\":{node}}}"),
        PrimOp::Write { node, posted } => {
            let codes: Vec<String> = posted.iter().map(|c| c.to_string()).collect();
            format!(
                "{head}\"op\":\"write\",\"node\":{node},\"posted\":[{}]}}",
                codes.join(",")
            )
        }
        PrimOp::Wait { node, woke } => {
            format!("{head}\"op\":\"wait\",\"node\":{node},\"woke\":{woke}}}")
        }
    }
}

fn event_from_json(value: &json::Value) -> Result<TraceEvent, TraceError> {
    let obj = value
        .as_object()
        .ok_or_else(|| bad("event must be an object"))?;
    let tick = get_usize(obj, "tick")? as u64;
    let agent = get_usize(obj, "agent")?;
    let op_name = get_str(obj, "op").ok_or_else(|| bad("event missing 'op'"))?;
    let op = match op_name.as_str() {
        "move" => PrimOp::Move {
            from: get_usize(obj, "from")?,
            to: get_usize(obj, "to")?,
        },
        "read" => PrimOp::Read {
            node: get_usize(obj, "node")?,
        },
        "write" => {
            let posted = match json::get(obj, "posted") {
                Some(json::Value::Arr(items)) => items
                    .iter()
                    .map(|v| {
                        v.as_num()
                            .map(|n| n as u32)
                            .ok_or_else(|| bad("posted codes must be numbers"))
                    })
                    .collect::<Result<Vec<u32>, TraceError>>()?,
                _ => Vec::new(),
            };
            PrimOp::Write {
                node: get_usize(obj, "node")?,
                posted,
            }
        }
        "wait" => {
            let woke = matches!(json::get(obj, "woke"), Some(json::Value::Bool(true)));
            PrimOp::Wait {
                node: get_usize(obj, "node")?,
                woke,
            }
        }
        other => return Err(bad(format!("unknown op '{other}'"))),
    };
    Ok(TraceEvent { tick, agent, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            label: "a \"quoted\" label\nwith newline".into(),
            seed: u64::MAX - 3,
            policy: "lockstep".into(),
            agents: 2,
            nodes: 6,
            schedule: vec![0, 1, 0, 1, 1, 0],
            events: vec![
                TraceEvent {
                    tick: 1,
                    agent: 0,
                    op: PrimOp::Read { node: 0 },
                },
                TraceEvent {
                    tick: 2,
                    agent: 1,
                    op: PrimOp::Write {
                        node: 3,
                        posted: vec![sign_kind_code(SignKind::Custom(11))],
                    },
                },
                TraceEvent {
                    tick: 3,
                    agent: 0,
                    op: PrimOp::Move { from: 0, to: 1 },
                },
                TraceEvent {
                    tick: 4,
                    agent: 1,
                    op: PrimOp::Wait {
                        node: 3,
                        woke: false,
                    },
                },
            ],
        }
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample();
        let parsed = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, parsed);
    }

    #[test]
    fn sign_codes_roundtrip() {
        for kind in [
            SignKind::HomeBase,
            SignKind::Visited,
            SignKind::Sync,
            SignKind::Match,
            SignKind::VisitDone,
            SignKind::RoundDone,
            SignKind::Acquired,
            SignKind::Leader,
            SignKind::Unsolvable,
            SignKind::Custom(0),
            SignKind::Custom(11),
            SignKind::Custom(u16::MAX),
        ] {
            assert_eq!(sign_kind_from_code(sign_kind_code(kind)), Some(kind));
        }
        assert_eq!(sign_kind_from_code(999), None);
    }

    #[test]
    fn seed_survives_full_u64_range() {
        let t = Trace {
            seed: u64::MAX,
            ..Trace::default()
        };
        let parsed = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed.seed, u64::MAX);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("qelect-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let t = sample();
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hand_written_minimal_trace_parses() {
        let text = r#"{"version":1,"agents":2,"nodes":6,"schedule":[0,1,0]}"#;
        let t = Trace::from_json(text).unwrap();
        assert_eq!(t.schedule, vec![0, 1, 0]);
        assert_eq!(t.agents, 2);
        assert!(t.events.is_empty());
        assert_eq!(t.seed, 0);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(Trace::from_json("{").is_err());
        assert!(Trace::from_json("[]").is_err());
        assert!(
            Trace::from_json(r#"{"version":1,"agents":2,"nodes":3}"#).is_err(),
            "missing schedule"
        );
        assert!(
            Trace::from_json(r#"{"version":1,"agents":2,"nodes":3,"schedule":["x"]}"#).is_err()
        );
    }

    #[test]
    fn envelope_schema_emitted_and_enforced() {
        let t = sample();
        assert!(t.to_json().contains("\"schema\": \"qelect-trace/1\""));
        // Neither a schema tag nor the legacy version marker: rejected.
        assert!(Trace::from_json(r#"{"agents":2,"nodes":3,"schedule":[0]}"#).is_err());
        // A foreign schema is rejected even with a valid body.
        assert!(Trace::from_json(
            r#"{"schema":"qelect-sweep/1","agents":2,"nodes":3,"schedule":[0]}"#
        )
        .is_err());
    }
}
