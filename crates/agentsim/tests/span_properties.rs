//! Property and concurrency tests of the phase-span layer.
//!
//! The load-bearing invariant: for *any* properly nested open/close
//! sequence, the per-phase exclusive totals of `Metrics::phase_breakdown`
//! (including the `(unspanned)` bucket) sum **exactly** to the run
//! totals — every counted move/access/wait is attributed to exactly one
//! phase. The concurrency test mirrors the torn-read discipline of
//! `AgentMetrics::snapshot` for `SpanTracker::snapshot`.

use proptest::prelude::*;
use qelect_agentsim::metrics::Counters;
use qelect_agentsim::{AgentMetrics, Metrics, SpanTracker, UNSPANNED};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One step of a simulated agent: bump a counter or touch the span stack.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Add `(moves, accesses, waits)` to the counters.
    Bump(u8, u8, u8),
    /// Open a span named by the index into `NAMES`.
    Open(u8),
    /// Close the innermost open span (no-op on an empty stack).
    Close,
}

const NAMES: [&str; 4] = ["map-drawing", "classes", "agent-reduce", "node-reduce"];

fn ops() -> impl Strategy<Value = Vec<Op>> {
    (any::<u64>(), 0usize..60).prop_map(|(seed, len)| {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        (0..len)
            .map(|_| match next() % 3 {
                0 => Op::Bump((next() % 5) as u8, (next() % 5) as u8, (next() % 3) as u8),
                1 => Op::Open((next() % NAMES.len() as u64) as u8),
                _ => Op::Close,
            })
            .collect()
    })
}

/// Replay `ops` against a tracker, returning the final counters and the
/// sealed spans (any span still open at the end is force-closed, the
/// same backstop the engines apply after an agent's program returns).
fn replay(ops: &[Op]) -> (Counters, Metrics) {
    let tracker = SpanTracker::new(0);
    let mut now: Counters = (0, 0, 0);
    // Shadow name stack: `SpanTracker::close` checks (in debug builds)
    // that the name matches the innermost open span.
    let mut stack: Vec<&str> = Vec::new();
    for op in ops {
        match *op {
            Op::Bump(m, a, w) => {
                now.0 += m as u64;
                now.1 += a as u64;
                now.2 += w as u64;
            }
            Op::Open(name) => {
                let name = NAMES[name as usize];
                tracker.open(name, now, None);
                stack.push(name);
            }
            Op::Close => {
                if let Some(name) = stack.pop() {
                    tracker.close(name, now, None);
                }
            }
        }
    }
    tracker.force_close_all(now, None);
    let metrics = Metrics {
        per_agent: vec![now],
        spans: tracker.take(),
        ..Metrics::default()
    };
    (now, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Phase rows (plus the unspanned bucket) sum exactly to run totals
    /// for arbitrary nesting and arbitrary interleaved counting.
    #[test]
    fn breakdown_sums_exactly_to_totals(ops in ops()) {
        let (now, metrics) = replay(&ops);
        let rows = metrics.phase_breakdown();
        let sum = rows.iter().fold((0u64, 0u64, 0u64), |acc, r| {
            (acc.0 + r.moves, acc.1 + r.accesses, acc.2 + r.waits)
        });
        prop_assert_eq!(sum, now, "rows: {:?}", rows);
        // Exclusive attribution never goes negative (no underflow) and
        // every span's inclusive cost is within the run totals.
        for span in &metrics.spans {
            let inc = span.inclusive();
            prop_assert!(inc.0 <= now.0 && inc.1 <= now.1 && inc.2 <= now.2);
            let exc = span.exclusive();
            prop_assert!(exc.0 <= inc.0 && exc.1 <= inc.1 && exc.2 <= inc.2);
        }
        // The unspanned bucket appears at most once, and last.
        let unspanned: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.phase == UNSPANNED)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(unspanned.len() <= 1);
        if let Some(&i) = unspanned.first() {
            prop_assert_eq!(i, rows.len() - 1);
        }
    }
}

/// Mirror of `snapshot_is_consistent_under_concurrent_increments` for
/// spans: a writer repeatedly wraps exactly one move + access + wait in
/// a span while a reader snapshots the tracker. The double-read
/// discipline must make every observed span consistent with a counter
/// state that actually existed: closed spans cost exactly `(1,1,1)`
/// inclusive, a virtually-closed open span at most that, and the
/// exclusive sum never exceeds the (monotone) counters read afterwards.
#[test]
fn span_snapshot_is_torn_read_free_under_concurrent_spans() {
    let am = Arc::new(AgentMetrics::default());
    let tracker = Arc::new(SpanTracker::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let am = Arc::clone(&am);
        let tracker = Arc::clone(&tracker);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                tracker.open("w", am.snapshot(), None);
                am.moves.fetch_add(1, Ordering::SeqCst);
                am.accesses.fetch_add(1, Ordering::SeqCst);
                am.waits.fetch_add(1, Ordering::SeqCst);
                tracker.close("w", am.snapshot(), None);
                // Drain sealed spans (as the engines do at teardown) so
                // the closed list — which `snapshot` clones under the
                // lock — stays O(1) and the reader's double-read
                // discipline can converge. Sealed spans cost exactly
                // one of each counter.
                for span in tracker.take() {
                    assert_eq!(span.inclusive(), (1, 1, 1));
                }
            }
        })
    };
    for _ in 0..5_000 {
        let spans = tracker.snapshot(&am, None);
        let mut sum = (0u64, 0u64, 0u64);
        for span in &spans {
            let inc = span.inclusive();
            assert!(
                inc.0 <= 1 && inc.1 <= 1 && inc.2 <= 1,
                "torn span: inclusive {inc:?} (writer does exactly one of each per span)"
            );
            let exc = span.exclusive();
            sum = (sum.0 + exc.0, sum.1 + exc.1, sum.2 + exc.2);
        }
        let (m, a, w) = am.snapshot();
        assert!(
            sum.0 <= m && sum.1 <= a && sum.2 <= w,
            "span total {sum:?} exceeds counters ({m}, {a}, {w})"
        );
    }
    stop.store(true, Ordering::Relaxed);
    writer.join().unwrap();
}
