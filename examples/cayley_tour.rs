//! A tour of the effectual protocol on Cayley graphs (Theorem 4.1).
//!
//! ```sh
//! cargo run --example cayley_tour
//! ```
//!
//! For a series of Cayley instances the example shows the full pipeline:
//! Cayley recognition (regular subgroups of `Aut(G)`), translation
//! classes and their gcd, the executable marking construction of the
//! impossibility proof, and the protocol's verdict.

use qelect::prelude::*;
use qelect_graph::{families, Bicolored};
use qelect_group::marking::marking_schedule;
use qelect_group::recognition::{regular_subgroups, RecognitionBudget};
use qelect_group::CayleyGraph;

fn main() {
    let cases: Vec<(&str, Bicolored)> = vec![
        (
            "C6, antipodal pair",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap(),
        ),
        (
            "C6, symmetry-broken trio",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap(),
        ),
        (
            "Q3 hypercube, antipodal pair",
            Bicolored::new(families::hypercube(3).unwrap(), &[0, 7]).unwrap(),
        ),
        (
            "C4, adjacent pair (the subtle corner)",
            Bicolored::new(families::cycle(4).unwrap(), &[0, 1]).unwrap(),
        ),
    ];

    for (label, bc) in cases {
        println!("== {label} ==");
        let rec = regular_subgroups(bc.graph(), RecognitionBudget::default());
        println!(
            "   |Aut(G)| = {:?}, regular subgroups found: {}",
            rec.automorphism_count,
            rec.subgroups.len()
        );
        for (i, sub) in rec.subgroups.iter().enumerate() {
            println!(
                "   subgroup #{i}: translation-gcd for this placement = {}",
                sub.translation_gcd(bc.homebases())
            );
        }
        let report = run_translation_elect(&bc, RunConfig::default().to_gated());
        println!("   protocol verdict: {:?}\n", report.outcomes[0]);
    }

    // The marking construction, executed on a constructed Cayley graph.
    println!("== Theorem 4.1 marking construction, C8 with antipodal agents ==");
    let cg = CayleyGraph::cycle(8).unwrap();
    let trace = marking_schedule(&cg, &[0, 4]);
    println!("   translation classes: {:?}", trace.initial_classes);
    println!("   invariant gcd d = {}", trace.d);
    println!(
        "   final pseudo-label classes (all of size d): {:?}",
        trace.final_classes
    );
    println!("   ⇒ the natural generator labeling is a Theorem 2.1 witness: election impossible.");
}
