//! Rendezvous: election as a subroutine (the paper's footnote 2).
//!
//! ```sh
//! cargo run --example rendezvous
//! ```
//!
//! Four agents scattered over a 3×4 torus elect a leader with protocol
//! ELECT and then gather at the leader's home-base — the gathering
//! problem becomes "straightforward" once election is solved, and this
//! example measures exactly how much extra work the straightforward part
//! costs.

use qelect::gathering::run_gather;
use qelect::prelude::*;
use qelect_graph::{families, Bicolored};

fn main() {
    let graph = families::torus(&[3, 4]).expect("valid torus");
    let instance = Bicolored::new(graph, &[0, 1, 5, 7]).expect("valid placement");
    println!(
        "instance: 3x4 torus, agents at {:?} (class gcd = {})",
        instance.homebases(),
        qelect::solvability::gcd_of_class_sizes(&instance)
    );

    // Election alone, for comparison.
    let elect_only = run_election(&instance, &RunConfig::default())
        .expect("election run failed")
        .report;
    assert!(elect_only.clean_election(), "{:?}", elect_only.outcomes);
    println!(
        "election alone: leader = agent {:?}, {} moves",
        elect_only.leader,
        elect_only.metrics.total_moves()
    );

    // Election + gathering.
    let report = run_gather(&instance, RunConfig::default().to_gated());
    assert!(report.clean_election(), "{:?}", report.outcomes);
    println!(
        "election + gathering: leader = agent {:?}, {} moves",
        report.leader,
        report.metrics.total_moves()
    );
    println!(
        "gathering premium: {} extra moves (≤ r·diameter = {})",
        report.metrics.total_moves() - elect_only.metrics.total_moves(),
        instance.r() * instance.graph().diameter()
    );

    // And on an unsolvable instance, gathering honestly fails too.
    let sym = Bicolored::new(families::torus(&[4, 4]).unwrap(), &[0, 10]).unwrap();
    let report = run_gather(&sym, RunConfig::default().to_gated());
    println!(
        "\n4x4 torus, antipodal pair → {:?} (no leader, no rendezvous point)",
        report.outcomes[0]
    );
}
