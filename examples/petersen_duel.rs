//! The Petersen duel (Fig. 5): where ELECT gives up but a bespoke
//! protocol still elects.
//!
//! ```sh
//! cargo run --example petersen_duel
//! ```

use qelect::petersen::run_petersen;
use qelect::prelude::*;
use qelect_graph::surrounding::ordered_classes;
use qelect_graph::{families, Bicolored};

fn main() {
    let bc = Bicolored::new(families::petersen().unwrap(), &[0, 1]).unwrap();
    println!("two agents on adjacent nodes of the Petersen graph\n");

    let oc = ordered_classes(&bc);
    let sizes: Vec<usize> = oc.classes.iter().map(|c| c.len()).collect();
    println!("equivalence classes (black first): sizes {sizes:?}");
    println!(
        "gcd = {} → protocol ELECT cannot reduce below 2 agents\n",
        oc.gcd_of_sizes()
    );

    let elect_report = run_election(&bc, &RunConfig::default())
        .expect("election run failed")
        .report;
    println!("ELECT outcome: {:?}", elect_report.outcomes);

    println!("\nthe bespoke five-step protocol (mark a neighbor, find the");
    println!("other's mark, race for the unique common neighbor):");
    for seed in 0..3 {
        let report = run_petersen(&bc, RunConfig::new(seed).to_gated());
        println!(
            "  seed {seed}: leader = agent {:?} ({} moves)",
            report.leader.expect("the duel always crowns someone"),
            report.metrics.total_moves()
        );
    }
    println!("\nELECT is therefore not effectual on arbitrary graphs (Fig. 5).");
}
