//! Quickstart: elect a leader among incomparably-colored mobile agents.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Three agents land on a 9-cycle. Their colors are distinct but carry
//! no order — no agent can say its color is "bigger". Protocol ELECT
//! breaks the symmetry using only the network's own asymmetries: it maps
//! the graph, canonically orders the equivalence classes of `(G, p)`,
//! and reduces the active set to `gcd(|C_1|, …, |C_k|)` agents.

use qelect::prelude::*;
use qelect_graph::{families, Bicolored};

fn main() {
    // A 9-cycle with agents at nodes 0, 1 and 3 — an asymmetric
    // placement, so the class gcd is 1 and election must succeed.
    let graph = families::cycle(9).expect("valid cycle");
    let instance = Bicolored::new(graph, &[0, 1, 3]).expect("valid placement");

    println!("instance: C9 with agents at {:?}", instance.homebases());
    println!(
        "class-gcd oracle says election is {}",
        if qelect::solvability::elect_succeeds(&instance) {
            "possible"
        } else {
            "impossible"
        }
    );

    let election = run_election(&instance, &RunConfig::new(0)).expect("run completes");
    let report = &election.report;

    for (i, outcome) in report.outcomes.iter().enumerate() {
        println!("agent {i} ({}) → {outcome:?}", report.colors[i]);
    }
    match report.leader {
        Some(i) => println!("leader: agent {i}"),
        None => println!("no leader elected"),
    }
    println!(
        "cost: {} moves, {} whiteboard accesses (Theorem 3.1 bounds this by O(r·|E|))",
        report.metrics.total_moves(),
        report.metrics.total_accesses()
    );

    // Now a symmetric instance: two antipodal agents on C6. The classes
    // have gcd 2 and ELECT must *report* the impossibility.
    let graph = families::cycle(6).expect("valid cycle");
    let symmetric = Bicolored::new(graph, &[0, 3]).expect("valid placement");
    let election = run_election(&symmetric, &RunConfig::new(0)).expect("run completes");
    println!(
        "\nC6 antipodal pair → {:?} (the paper: gcd(|C_i|) = 2, election impossible)",
        election.report.outcomes
    );
}
