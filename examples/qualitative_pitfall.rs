//! Why "just sort the views" fails without comparability — and why
//! anonymity is even worse.
//!
//! ```sh
//! cargo run --example qualitative_pitfall
//! ```
//!
//! Part 1 replays the paper's Fig. 2(b): two agents walking the same
//! path from opposite ends read different symbol sequences, yet the only
//! encoding available in the qualitative world (first-seen numbering)
//! collapses them to the same code.
//!
//! Part 2 replays the §1.3 impossibility argument: an anonymous protocol
//! that is perfectly correct for a lone agent on `C₃` elects *two*
//! leaders on `C₆` under the synchronous scheduler.

use qelect::anonymous::run_ring_probe;
use qelect::prelude::*;
use qelect_agentsim::sched::Policy;
use qelect_agentsim::AgentOutcome;
use qelect_graph::view::{first_seen_code, path_walk_symbols};
use qelect_graph::{families, Bicolored, GraphBuilder, Port};

fn main() {
    // ---- Part 1: the coding collision ----
    println!("Part 1 — the Fig. 2(b) coding collision\n");
    let mut b = GraphBuilder::new(3);
    b.add_edge_with_ports(0, 1, Port(10), Port(20)).unwrap(); // l_x = *, l_y = o
    b.add_edge_with_ports(1, 2, Port(30), Port(10)).unwrap(); // l_y = •, l_z = *
    let path = Bicolored::new(b.finish().unwrap(), &[0, 2]).unwrap();

    let from_x = path_walk_symbols(&path, 0);
    let from_z = path_walk_symbols(&path, 2);
    println!("agent from x reads symbols {from_x:?}");
    println!("agent from z reads symbols {from_z:?}");
    println!("first-seen code from x: {:?}", first_seen_code(&from_x));
    println!("first-seen code from z: {:?}", first_seen_code(&from_z));
    println!("→ different walks, identical codes: views cannot be sorted.\n");

    // ---- Part 2: anonymity is fatal ----
    println!("Part 2 — the §1.3 anonymous-agents impossibility\n");
    let lone = Bicolored::new(families::cycle(3).unwrap(), &[0]).unwrap();
    let report = run_ring_probe(&lone, RunConfig::default().to_gated());
    println!("C3, lone agent: {:?} (correct)", report.outcomes);

    let twins = Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap();
    let cfg = RunConfig::new(0).policy(Policy::Lockstep).to_gated();
    let report = run_ring_probe(&twins, cfg);
    let leaders = report
        .outcomes
        .iter()
        .filter(|o| **o == AgentOutcome::Leader)
        .count();
    println!(
        "C6, antipodal twins under the synchronous scheduler: {:?} → {leaders} leaders!",
        report.outcomes
    );
    println!("→ the same protocol cannot distinguish the two worlds: no effectual");
    println!("  election protocol exists for anonymous agents (paper, Section 1.3).");
}
