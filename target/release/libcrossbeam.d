/root/repo/target/release/libcrossbeam.rlib: /root/repo/crates/compat/crossbeam/src/lib.rs
