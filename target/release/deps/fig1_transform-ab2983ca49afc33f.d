/root/repo/target/release/deps/fig1_transform-ab2983ca49afc33f.d: crates/bench/src/bin/fig1_transform.rs

/root/repo/target/release/deps/fig1_transform-ab2983ca49afc33f: crates/bench/src/bin/fig1_transform.rs

crates/bench/src/bin/fig1_transform.rs:
