/root/repo/target/release/deps/table_moves-314808bf839346c4.d: crates/bench/src/bin/table_moves.rs

/root/repo/target/release/deps/table_moves-314808bf839346c4: crates/bench/src/bin/table_moves.rs

crates/bench/src/bin/table_moves.rs:
