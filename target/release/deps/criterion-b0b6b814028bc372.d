/root/repo/target/release/deps/criterion-b0b6b814028bc372.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b0b6b814028bc372.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-b0b6b814028bc372.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
