/root/repo/target/release/deps/table1-59150102614a0a65.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-59150102614a0a65: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
