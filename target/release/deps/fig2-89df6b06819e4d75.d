/root/repo/target/release/deps/fig2-89df6b06819e4d75.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-89df6b06819e4d75: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
