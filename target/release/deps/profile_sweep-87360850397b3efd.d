/root/repo/target/release/deps/profile_sweep-87360850397b3efd.d: crates/bench/src/bin/profile_sweep.rs

/root/repo/target/release/deps/profile_sweep-87360850397b3efd: crates/bench/src/bin/profile_sweep.rs

crates/bench/src/bin/profile_sweep.rs:
