/root/repo/target/release/deps/qelect_bench-e9e3e0fe88b9d396.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libqelect_bench-e9e3e0fe88b9d396.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/release/deps/libqelect_bench-e9e3e0fe88b9d396.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
