/root/repo/target/release/deps/rand-bd2e6ef3be7d49d9.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-bd2e6ef3be7d49d9.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-bd2e6ef3be7d49d9.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
