/root/repo/target/release/deps/table_effectual-9bf4452a1da90354.d: crates/bench/src/bin/table_effectual.rs

/root/repo/target/release/deps/table_effectual-9bf4452a1da90354: crates/bench/src/bin/table_effectual.rs

crates/bench/src/bin/table_effectual.rs:
