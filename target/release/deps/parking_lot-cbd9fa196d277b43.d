/root/repo/target/release/deps/parking_lot-cbd9fa196d277b43.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-cbd9fa196d277b43.rlib: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-cbd9fa196d277b43.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
