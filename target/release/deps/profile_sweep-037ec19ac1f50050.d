/root/repo/target/release/deps/profile_sweep-037ec19ac1f50050.d: crates/bench/src/bin/profile_sweep.rs

/root/repo/target/release/deps/profile_sweep-037ec19ac1f50050: crates/bench/src/bin/profile_sweep.rs

crates/bench/src/bin/profile_sweep.rs:
