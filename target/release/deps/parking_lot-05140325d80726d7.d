/root/repo/target/release/deps/parking_lot-05140325d80726d7.d: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-05140325d80726d7.rlib: crates/compat/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-05140325d80726d7.rmeta: crates/compat/parking_lot/src/lib.rs

crates/compat/parking_lot/src/lib.rs:
