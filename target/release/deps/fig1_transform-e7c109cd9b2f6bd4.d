/root/repo/target/release/deps/fig1_transform-e7c109cd9b2f6bd4.d: crates/bench/src/bin/fig1_transform.rs

/root/repo/target/release/deps/fig1_transform-e7c109cd9b2f6bd4: crates/bench/src/bin/fig1_transform.rs

crates/bench/src/bin/fig1_transform.rs:
