/root/repo/target/release/deps/sweep_random-6ad2d3b3a09dcf61.d: crates/bench/src/bin/sweep_random.rs

/root/repo/target/release/deps/sweep_random-6ad2d3b3a09dcf61: crates/bench/src/bin/sweep_random.rs

crates/bench/src/bin/sweep_random.rs:
