/root/repo/target/release/deps/crossbeam-f4a3b5369ee32209.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f4a3b5369ee32209.rlib: crates/compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f4a3b5369ee32209.rmeta: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
