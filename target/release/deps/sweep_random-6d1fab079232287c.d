/root/repo/target/release/deps/sweep_random-6d1fab079232287c.d: crates/bench/src/bin/sweep_random.rs

/root/repo/target/release/deps/sweep_random-6d1fab079232287c: crates/bench/src/bin/sweep_random.rs

crates/bench/src/bin/sweep_random.rs:
