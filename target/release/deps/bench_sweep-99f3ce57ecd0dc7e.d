/root/repo/target/release/deps/bench_sweep-99f3ce57ecd0dc7e.d: crates/bench/benches/bench_sweep.rs

/root/repo/target/release/deps/bench_sweep-99f3ce57ecd0dc7e: crates/bench/benches/bench_sweep.rs

crates/bench/benches/bench_sweep.rs:
