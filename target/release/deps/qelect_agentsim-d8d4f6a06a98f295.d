/root/repo/target/release/deps/qelect_agentsim-d8d4f6a06a98f295.d: crates/agentsim/src/lib.rs crates/agentsim/src/color.rs crates/agentsim/src/ctx.rs crates/agentsim/src/explore.rs crates/agentsim/src/freerun.rs crates/agentsim/src/gated.rs crates/agentsim/src/message_net.rs crates/agentsim/src/metrics.rs crates/agentsim/src/sched.rs crates/agentsim/src/shuffle.rs crates/agentsim/src/sign.rs crates/agentsim/src/stepagent.rs crates/agentsim/src/trace.rs crates/agentsim/src/whiteboard.rs

/root/repo/target/release/deps/libqelect_agentsim-d8d4f6a06a98f295.rlib: crates/agentsim/src/lib.rs crates/agentsim/src/color.rs crates/agentsim/src/ctx.rs crates/agentsim/src/explore.rs crates/agentsim/src/freerun.rs crates/agentsim/src/gated.rs crates/agentsim/src/message_net.rs crates/agentsim/src/metrics.rs crates/agentsim/src/sched.rs crates/agentsim/src/shuffle.rs crates/agentsim/src/sign.rs crates/agentsim/src/stepagent.rs crates/agentsim/src/trace.rs crates/agentsim/src/whiteboard.rs

/root/repo/target/release/deps/libqelect_agentsim-d8d4f6a06a98f295.rmeta: crates/agentsim/src/lib.rs crates/agentsim/src/color.rs crates/agentsim/src/ctx.rs crates/agentsim/src/explore.rs crates/agentsim/src/freerun.rs crates/agentsim/src/gated.rs crates/agentsim/src/message_net.rs crates/agentsim/src/metrics.rs crates/agentsim/src/sched.rs crates/agentsim/src/shuffle.rs crates/agentsim/src/sign.rs crates/agentsim/src/stepagent.rs crates/agentsim/src/trace.rs crates/agentsim/src/whiteboard.rs

crates/agentsim/src/lib.rs:
crates/agentsim/src/color.rs:
crates/agentsim/src/ctx.rs:
crates/agentsim/src/explore.rs:
crates/agentsim/src/freerun.rs:
crates/agentsim/src/gated.rs:
crates/agentsim/src/message_net.rs:
crates/agentsim/src/metrics.rs:
crates/agentsim/src/sched.rs:
crates/agentsim/src/shuffle.rs:
crates/agentsim/src/sign.rs:
crates/agentsim/src/stepagent.rs:
crates/agentsim/src/trace.rs:
crates/agentsim/src/whiteboard.rs:
