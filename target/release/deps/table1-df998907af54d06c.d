/root/repo/target/release/deps/table1-df998907af54d06c.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-df998907af54d06c: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
