/root/repo/target/release/deps/table1-67c587445bcd9d1b.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-67c587445bcd9d1b: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
