/root/repo/target/release/deps/crossbeam-00dba6470f3b6ff1.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-00dba6470f3b6ff1.rlib: crates/compat/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-00dba6470f3b6ff1.rmeta: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
