/root/repo/target/release/deps/criterion-00f1f5cafc32df38.d: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-00f1f5cafc32df38.rlib: crates/compat/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-00f1f5cafc32df38.rmeta: crates/compat/criterion/src/lib.rs

crates/compat/criterion/src/lib.rs:
