/root/repo/target/release/deps/table_effectual-16d45c39f15337a9.d: crates/bench/src/bin/table_effectual.rs

/root/repo/target/release/deps/table_effectual-16d45c39f15337a9: crates/bench/src/bin/table_effectual.rs

crates/bench/src/bin/table_effectual.rs:
