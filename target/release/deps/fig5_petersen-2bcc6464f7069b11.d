/root/repo/target/release/deps/fig5_petersen-2bcc6464f7069b11.d: crates/bench/src/bin/fig5_petersen.rs

/root/repo/target/release/deps/fig5_petersen-2bcc6464f7069b11: crates/bench/src/bin/fig5_petersen.rs

crates/bench/src/bin/fig5_petersen.rs:
