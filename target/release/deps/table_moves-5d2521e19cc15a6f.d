/root/repo/target/release/deps/table_moves-5d2521e19cc15a6f.d: crates/bench/src/bin/table_moves.rs

/root/repo/target/release/deps/table_moves-5d2521e19cc15a6f: crates/bench/src/bin/table_moves.rs

crates/bench/src/bin/table_moves.rs:
