/root/repo/target/release/deps/fig1_transform-055ce9ad1c6bb586.d: crates/bench/src/bin/fig1_transform.rs

/root/repo/target/release/deps/fig1_transform-055ce9ad1c6bb586: crates/bench/src/bin/fig1_transform.rs

crates/bench/src/bin/fig1_transform.rs:
