/root/repo/target/release/deps/qelect_graph-a46287b99f5bc561.d: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/automorphism.rs crates/graph/src/bicolored.rs crates/graph/src/cache.rs crates/graph/src/canon.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/error.rs crates/graph/src/families/mod.rs crates/graph/src/families/basic.rs crates/graph/src/families/network.rs crates/graph/src/families/product.rs crates/graph/src/families/random.rs crates/graph/src/families/special.rs crates/graph/src/graph.rs crates/graph/src/labeling.rs crates/graph/src/refine.rs crates/graph/src/surrounding.rs crates/graph/src/symmetricity.rs crates/graph/src/view.rs

/root/repo/target/release/deps/libqelect_graph-a46287b99f5bc561.rlib: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/automorphism.rs crates/graph/src/bicolored.rs crates/graph/src/cache.rs crates/graph/src/canon.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/error.rs crates/graph/src/families/mod.rs crates/graph/src/families/basic.rs crates/graph/src/families/network.rs crates/graph/src/families/product.rs crates/graph/src/families/random.rs crates/graph/src/families/special.rs crates/graph/src/graph.rs crates/graph/src/labeling.rs crates/graph/src/refine.rs crates/graph/src/surrounding.rs crates/graph/src/symmetricity.rs crates/graph/src/view.rs

/root/repo/target/release/deps/libqelect_graph-a46287b99f5bc561.rmeta: crates/graph/src/lib.rs crates/graph/src/analysis.rs crates/graph/src/automorphism.rs crates/graph/src/bicolored.rs crates/graph/src/cache.rs crates/graph/src/canon.rs crates/graph/src/digraph.rs crates/graph/src/dot.rs crates/graph/src/error.rs crates/graph/src/families/mod.rs crates/graph/src/families/basic.rs crates/graph/src/families/network.rs crates/graph/src/families/product.rs crates/graph/src/families/random.rs crates/graph/src/families/special.rs crates/graph/src/graph.rs crates/graph/src/labeling.rs crates/graph/src/refine.rs crates/graph/src/surrounding.rs crates/graph/src/symmetricity.rs crates/graph/src/view.rs

crates/graph/src/lib.rs:
crates/graph/src/analysis.rs:
crates/graph/src/automorphism.rs:
crates/graph/src/bicolored.rs:
crates/graph/src/cache.rs:
crates/graph/src/canon.rs:
crates/graph/src/digraph.rs:
crates/graph/src/dot.rs:
crates/graph/src/error.rs:
crates/graph/src/families/mod.rs:
crates/graph/src/families/basic.rs:
crates/graph/src/families/network.rs:
crates/graph/src/families/product.rs:
crates/graph/src/families/random.rs:
crates/graph/src/families/special.rs:
crates/graph/src/graph.rs:
crates/graph/src/labeling.rs:
crates/graph/src/refine.rs:
crates/graph/src/surrounding.rs:
crates/graph/src/symmetricity.rs:
crates/graph/src/view.rs:
