/root/repo/target/release/deps/table_moves-5e776d0d168c3eda.d: crates/bench/src/bin/table_moves.rs

/root/repo/target/release/deps/table_moves-5e776d0d168c3eda: crates/bench/src/bin/table_moves.rs

crates/bench/src/bin/table_moves.rs:
