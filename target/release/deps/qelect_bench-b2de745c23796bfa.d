/root/repo/target/release/deps/qelect_bench-b2de745c23796bfa.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libqelect_bench-b2de745c23796bfa.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libqelect_bench-b2de745c23796bfa.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/sweep.rs:
