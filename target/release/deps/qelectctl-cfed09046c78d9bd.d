/root/repo/target/release/deps/qelectctl-cfed09046c78d9bd.d: crates/bench/src/bin/qelectctl.rs

/root/repo/target/release/deps/qelectctl-cfed09046c78d9bd: crates/bench/src/bin/qelectctl.rs

crates/bench/src/bin/qelectctl.rs:
