/root/repo/target/release/deps/qelect_group-523896c8b3a854fc.d: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs

/root/repo/target/release/deps/libqelect_group-523896c8b3a854fc.rlib: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs

/root/repo/target/release/deps/libqelect_group-523896c8b3a854fc.rmeta: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs

crates/group/src/lib.rs:
crates/group/src/cayley.rs:
crates/group/src/classify.rs:
crates/group/src/group.rs:
crates/group/src/marking.rs:
crates/group/src/perm.rs:
crates/group/src/recognition.rs:
crates/group/src/sabidussi.rs:
