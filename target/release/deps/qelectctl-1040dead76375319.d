/root/repo/target/release/deps/qelectctl-1040dead76375319.d: crates/bench/src/bin/qelectctl.rs

/root/repo/target/release/deps/qelectctl-1040dead76375319: crates/bench/src/bin/qelectctl.rs

crates/bench/src/bin/qelectctl.rs:
