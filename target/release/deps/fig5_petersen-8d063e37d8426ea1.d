/root/repo/target/release/deps/fig5_petersen-8d063e37d8426ea1.d: crates/bench/src/bin/fig5_petersen.rs

/root/repo/target/release/deps/fig5_petersen-8d063e37d8426ea1: crates/bench/src/bin/fig5_petersen.rs

crates/bench/src/bin/fig5_petersen.rs:
