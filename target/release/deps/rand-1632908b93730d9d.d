/root/repo/target/release/deps/rand-1632908b93730d9d.d: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-1632908b93730d9d.rlib: crates/compat/rand/src/lib.rs

/root/repo/target/release/deps/librand-1632908b93730d9d.rmeta: crates/compat/rand/src/lib.rs

crates/compat/rand/src/lib.rs:
