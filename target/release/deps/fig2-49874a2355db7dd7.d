/root/repo/target/release/deps/fig2-49874a2355db7dd7.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-49874a2355db7dd7: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
