/root/repo/target/release/deps/bench_sweep-57e27f1a1d8c784d.d: crates/bench/benches/bench_sweep.rs

/root/repo/target/release/deps/bench_sweep-57e27f1a1d8c784d: crates/bench/benches/bench_sweep.rs

crates/bench/benches/bench_sweep.rs:
