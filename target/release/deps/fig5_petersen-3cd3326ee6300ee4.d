/root/repo/target/release/deps/fig5_petersen-3cd3326ee6300ee4.d: crates/bench/src/bin/fig5_petersen.rs

/root/repo/target/release/deps/fig5_petersen-3cd3326ee6300ee4: crates/bench/src/bin/fig5_petersen.rs

crates/bench/src/bin/fig5_petersen.rs:
