/root/repo/target/release/deps/qelectctl-ea1aef637342b325.d: crates/bench/src/bin/qelectctl.rs

/root/repo/target/release/deps/qelectctl-ea1aef637342b325: crates/bench/src/bin/qelectctl.rs

crates/bench/src/bin/qelectctl.rs:
