/root/repo/target/release/deps/fig2-40eef8a54aadbea5.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-40eef8a54aadbea5: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
