/root/repo/target/release/deps/qelect_bench-bc4fdfb54efbe44d.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libqelect_bench-bc4fdfb54efbe44d.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/release/deps/libqelect_bench-bc4fdfb54efbe44d.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/sweep.rs:
