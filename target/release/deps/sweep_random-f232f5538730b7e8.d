/root/repo/target/release/deps/sweep_random-f232f5538730b7e8.d: crates/bench/src/bin/sweep_random.rs

/root/repo/target/release/deps/sweep_random-f232f5538730b7e8: crates/bench/src/bin/sweep_random.rs

crates/bench/src/bin/sweep_random.rs:
