/root/repo/target/release/deps/table_effectual-0307d0f9661f5f22.d: crates/bench/src/bin/table_effectual.rs

/root/repo/target/release/deps/table_effectual-0307d0f9661f5f22: crates/bench/src/bin/table_effectual.rs

crates/bench/src/bin/table_effectual.rs:
