/root/repo/target/release/deps/pet-c858ff0bc5eb1af2.d: crates/bench/src/bin/pet.rs

/root/repo/target/release/deps/pet-c858ff0bc5eb1af2: crates/bench/src/bin/pet.rs

crates/bench/src/bin/pet.rs:
