/root/repo/target/release/deps/proptest-fbc1fc149b6fb615.d: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fbc1fc149b6fb615.rlib: crates/compat/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-fbc1fc149b6fb615.rmeta: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
