/root/repo/target/debug/deps/crossbeam-1f1cd36990da65c4.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-1f1cd36990da65c4: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
