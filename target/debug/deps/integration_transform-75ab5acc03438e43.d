/root/repo/target/debug/deps/integration_transform-75ab5acc03438e43.d: crates/core/../../tests/integration_transform.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_transform-75ab5acc03438e43.rmeta: crates/core/../../tests/integration_transform.rs Cargo.toml

crates/core/../../tests/integration_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
