/root/repo/target/debug/deps/properties-b883b5fc80f3caba.d: crates/graph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b883b5fc80f3caba.rmeta: crates/graph/tests/properties.rs Cargo.toml

crates/graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
