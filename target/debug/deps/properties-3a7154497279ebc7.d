/root/repo/target/debug/deps/properties-3a7154497279ebc7.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-3a7154497279ebc7: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
