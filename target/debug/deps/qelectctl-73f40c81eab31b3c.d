/root/repo/target/debug/deps/qelectctl-73f40c81eab31b3c.d: crates/bench/src/bin/qelectctl.rs Cargo.toml

/root/repo/target/debug/deps/libqelectctl-73f40c81eab31b3c.rmeta: crates/bench/src/bin/qelectctl.rs Cargo.toml

crates/bench/src/bin/qelectctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
