/root/repo/target/debug/deps/integration_elect-217d532b92c133f8.d: crates/core/../../tests/integration_elect.rs

/root/repo/target/debug/deps/integration_elect-217d532b92c133f8: crates/core/../../tests/integration_elect.rs

crates/core/../../tests/integration_elect.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
