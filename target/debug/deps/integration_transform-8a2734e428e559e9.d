/root/repo/target/debug/deps/integration_transform-8a2734e428e559e9.d: crates/core/../../tests/integration_transform.rs

/root/repo/target/debug/deps/integration_transform-8a2734e428e559e9: crates/core/../../tests/integration_transform.rs

crates/core/../../tests/integration_transform.rs:
