/root/repo/target/debug/deps/sweep_random-53453ccc2c2be727.d: crates/bench/src/bin/sweep_random.rs

/root/repo/target/debug/deps/sweep_random-53453ccc2c2be727: crates/bench/src/bin/sweep_random.rs

crates/bench/src/bin/sweep_random.rs:
