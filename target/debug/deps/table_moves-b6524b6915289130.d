/root/repo/target/debug/deps/table_moves-b6524b6915289130.d: crates/bench/src/bin/table_moves.rs Cargo.toml

/root/repo/target/debug/deps/libtable_moves-b6524b6915289130.rmeta: crates/bench/src/bin/table_moves.rs Cargo.toml

crates/bench/src/bin/table_moves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
