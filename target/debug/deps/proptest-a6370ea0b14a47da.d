/root/repo/target/debug/deps/proptest-a6370ea0b14a47da.d: crates/compat/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-a6370ea0b14a47da: crates/compat/proptest/src/lib.rs

crates/compat/proptest/src/lib.rs:
