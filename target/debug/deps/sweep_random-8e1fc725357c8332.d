/root/repo/target/debug/deps/sweep_random-8e1fc725357c8332.d: crates/bench/src/bin/sweep_random.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_random-8e1fc725357c8332.rmeta: crates/bench/src/bin/sweep_random.rs Cargo.toml

crates/bench/src/bin/sweep_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
