/root/repo/target/debug/deps/crossbeam-2aecefac5359e8d5.d: crates/compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-2aecefac5359e8d5.rlib: crates/compat/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-2aecefac5359e8d5.rmeta: crates/compat/crossbeam/src/lib.rs

crates/compat/crossbeam/src/lib.rs:
