/root/repo/target/debug/deps/properties-e73bf596a9ef63d2.d: crates/graph/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-e73bf596a9ef63d2.rmeta: crates/graph/tests/properties.rs Cargo.toml

crates/graph/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
