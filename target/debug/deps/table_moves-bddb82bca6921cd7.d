/root/repo/target/debug/deps/table_moves-bddb82bca6921cd7.d: crates/bench/src/bin/table_moves.rs

/root/repo/target/debug/deps/table_moves-bddb82bca6921cd7: crates/bench/src/bin/table_moves.rs

crates/bench/src/bin/table_moves.rs:
