/root/repo/target/debug/deps/sweep_random-12e854c220afce6c.d: crates/bench/src/bin/sweep_random.rs

/root/repo/target/debug/deps/sweep_random-12e854c220afce6c: crates/bench/src/bin/sweep_random.rs

crates/bench/src/bin/sweep_random.rs:
