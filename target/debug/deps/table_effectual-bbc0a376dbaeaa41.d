/root/repo/target/debug/deps/table_effectual-bbc0a376dbaeaa41.d: crates/bench/src/bin/table_effectual.rs

/root/repo/target/debug/deps/table_effectual-bbc0a376dbaeaa41: crates/bench/src/bin/table_effectual.rs

crates/bench/src/bin/table_effectual.rs:
