/root/repo/target/debug/deps/qelectctl-2c3cb29dafc0e244.d: crates/bench/src/bin/qelectctl.rs Cargo.toml

/root/repo/target/debug/deps/libqelectctl-2c3cb29dafc0e244.rmeta: crates/bench/src/bin/qelectctl.rs Cargo.toml

crates/bench/src/bin/qelectctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
