/root/repo/target/debug/deps/table_moves-ea2b32d2849a4956.d: crates/bench/src/bin/table_moves.rs

/root/repo/target/debug/deps/table_moves-ea2b32d2849a4956: crates/bench/src/bin/table_moves.rs

crates/bench/src/bin/table_moves.rs:
