/root/repo/target/debug/deps/fig2-b30f30964572fcf0.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-b30f30964572fcf0: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
