/root/repo/target/debug/deps/crossbeam-30d6f8eaca220184.d: crates/compat/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-30d6f8eaca220184.rmeta: crates/compat/crossbeam/src/lib.rs Cargo.toml

crates/compat/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
