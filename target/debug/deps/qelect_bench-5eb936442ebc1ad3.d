/root/repo/target/debug/deps/qelect_bench-5eb936442ebc1ad3.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libqelect_bench-5eb936442ebc1ad3.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/libqelect_bench-5eb936442ebc1ad3.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/sweep.rs:
