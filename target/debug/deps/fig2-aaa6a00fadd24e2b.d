/root/repo/target/debug/deps/fig2-aaa6a00fadd24e2b.d: crates/bench/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-aaa6a00fadd24e2b.rmeta: crates/bench/src/bin/fig2.rs Cargo.toml

crates/bench/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
