/root/repo/target/debug/deps/bench_theory-365970b9e50c2ce7.d: crates/bench/benches/bench_theory.rs Cargo.toml

/root/repo/target/debug/deps/libbench_theory-365970b9e50c2ce7.rmeta: crates/bench/benches/bench_theory.rs Cargo.toml

crates/bench/benches/bench_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
