/root/repo/target/debug/deps/qelect_bench-95c10a2217ad51eb.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libqelect_bench-95c10a2217ad51eb.rlib: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libqelect_bench-95c10a2217ad51eb.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
