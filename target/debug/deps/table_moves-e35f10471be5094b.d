/root/repo/target/debug/deps/table_moves-e35f10471be5094b.d: crates/bench/src/bin/table_moves.rs Cargo.toml

/root/repo/target/debug/deps/libtable_moves-e35f10471be5094b.rmeta: crates/bench/src/bin/table_moves.rs Cargo.toml

crates/bench/src/bin/table_moves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
