/root/repo/target/debug/deps/properties_cross_crate-5af6c7d890f0abbe.d: crates/core/../../tests/properties_cross_crate.rs

/root/repo/target/debug/deps/properties_cross_crate-5af6c7d890f0abbe: crates/core/../../tests/properties_cross_crate.rs

crates/core/../../tests/properties_cross_crate.rs:
