/root/repo/target/debug/deps/table1-202cdd7adde6df49.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-202cdd7adde6df49: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
