/root/repo/target/debug/deps/integration_explore-1499936fe3c0da54.d: crates/core/../../tests/integration_explore.rs

/root/repo/target/debug/deps/integration_explore-1499936fe3c0da54: crates/core/../../tests/integration_explore.rs

crates/core/../../tests/integration_explore.rs:
