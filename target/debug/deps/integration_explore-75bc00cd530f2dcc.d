/root/repo/target/debug/deps/integration_explore-75bc00cd530f2dcc.d: crates/core/../../tests/integration_explore.rs

/root/repo/target/debug/deps/integration_explore-75bc00cd530f2dcc: crates/core/../../tests/integration_explore.rs

crates/core/../../tests/integration_explore.rs:
