/root/repo/target/debug/deps/integration_transform-b5dafd555cf5f5c8.d: crates/core/../../tests/integration_transform.rs

/root/repo/target/debug/deps/integration_transform-b5dafd555cf5f5c8: crates/core/../../tests/integration_transform.rs

crates/core/../../tests/integration_transform.rs:
