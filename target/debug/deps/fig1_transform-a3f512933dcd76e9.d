/root/repo/target/debug/deps/fig1_transform-a3f512933dcd76e9.d: crates/bench/src/bin/fig1_transform.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_transform-a3f512933dcd76e9.rmeta: crates/bench/src/bin/fig1_transform.rs Cargo.toml

crates/bench/src/bin/fig1_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
