/root/repo/target/debug/deps/bench_sched_ablation-b450aa2e6d66dc2f.d: crates/bench/benches/bench_sched_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sched_ablation-b450aa2e6d66dc2f.rmeta: crates/bench/benches/bench_sched_ablation.rs Cargo.toml

crates/bench/benches/bench_sched_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
