/root/repo/target/debug/deps/criterion-013994b5d8effbb1.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-013994b5d8effbb1.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
