/root/repo/target/debug/deps/table1-c815a6cd2705c0ff.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-c815a6cd2705c0ff.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
