/root/repo/target/debug/deps/fig5_petersen-b8d901c3f2cc7d4e.d: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_petersen-b8d901c3f2cc7d4e.rmeta: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

crates/bench/src/bin/fig5_petersen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
