/root/repo/target/debug/deps/bench_views-367ff38cf65f6afe.d: crates/bench/benches/bench_views.rs Cargo.toml

/root/repo/target/debug/deps/libbench_views-367ff38cf65f6afe.rmeta: crates/bench/benches/bench_views.rs Cargo.toml

crates/bench/benches/bench_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
