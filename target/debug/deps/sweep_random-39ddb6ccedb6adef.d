/root/repo/target/debug/deps/sweep_random-39ddb6ccedb6adef.d: crates/bench/src/bin/sweep_random.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_random-39ddb6ccedb6adef.rmeta: crates/bench/src/bin/sweep_random.rs Cargo.toml

crates/bench/src/bin/sweep_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
