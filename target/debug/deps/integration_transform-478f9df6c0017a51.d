/root/repo/target/debug/deps/integration_transform-478f9df6c0017a51.d: crates/core/../../tests/integration_transform.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_transform-478f9df6c0017a51.rmeta: crates/core/../../tests/integration_transform.rs Cargo.toml

crates/core/../../tests/integration_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
