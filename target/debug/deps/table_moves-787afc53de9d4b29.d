/root/repo/target/debug/deps/table_moves-787afc53de9d4b29.d: crates/bench/src/bin/table_moves.rs Cargo.toml

/root/repo/target/debug/deps/libtable_moves-787afc53de9d4b29.rmeta: crates/bench/src/bin/table_moves.rs Cargo.toml

crates/bench/src/bin/table_moves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
