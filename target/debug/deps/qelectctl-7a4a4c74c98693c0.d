/root/repo/target/debug/deps/qelectctl-7a4a4c74c98693c0.d: crates/bench/src/bin/qelectctl.rs Cargo.toml

/root/repo/target/debug/deps/libqelectctl-7a4a4c74c98693c0.rmeta: crates/bench/src/bin/qelectctl.rs Cargo.toml

crates/bench/src/bin/qelectctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
