/root/repo/target/debug/deps/bench_sweep-5f86e2f21c2f2422.d: crates/bench/benches/bench_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sweep-5f86e2f21c2f2422.rmeta: crates/bench/benches/bench_sweep.rs Cargo.toml

crates/bench/benches/bench_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
