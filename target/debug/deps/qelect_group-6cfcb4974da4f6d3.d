/root/repo/target/debug/deps/qelect_group-6cfcb4974da4f6d3.d: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs Cargo.toml

/root/repo/target/debug/deps/libqelect_group-6cfcb4974da4f6d3.rmeta: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs Cargo.toml

crates/group/src/lib.rs:
crates/group/src/cayley.rs:
crates/group/src/classify.rs:
crates/group/src/group.rs:
crates/group/src/marking.rs:
crates/group/src/perm.rs:
crates/group/src/recognition.rs:
crates/group/src/sabidussi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
