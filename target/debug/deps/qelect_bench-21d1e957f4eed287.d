/root/repo/target/debug/deps/qelect_bench-21d1e957f4eed287.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqelect_bench-21d1e957f4eed287.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
