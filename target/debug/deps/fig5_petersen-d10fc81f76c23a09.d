/root/repo/target/debug/deps/fig5_petersen-d10fc81f76c23a09.d: crates/bench/src/bin/fig5_petersen.rs

/root/repo/target/debug/deps/fig5_petersen-d10fc81f76c23a09: crates/bench/src/bin/fig5_petersen.rs

crates/bench/src/bin/fig5_petersen.rs:
