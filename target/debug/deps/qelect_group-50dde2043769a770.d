/root/repo/target/debug/deps/qelect_group-50dde2043769a770.d: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs Cargo.toml

/root/repo/target/debug/deps/libqelect_group-50dde2043769a770.rmeta: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs Cargo.toml

crates/group/src/lib.rs:
crates/group/src/cayley.rs:
crates/group/src/classify.rs:
crates/group/src/group.rs:
crates/group/src/marking.rs:
crates/group/src/perm.rs:
crates/group/src/recognition.rs:
crates/group/src/sabidussi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
