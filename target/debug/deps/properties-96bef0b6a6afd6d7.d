/root/repo/target/debug/deps/properties-96bef0b6a6afd6d7.d: crates/group/tests/properties.rs

/root/repo/target/debug/deps/properties-96bef0b6a6afd6d7: crates/group/tests/properties.rs

crates/group/tests/properties.rs:
