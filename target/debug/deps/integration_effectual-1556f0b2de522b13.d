/root/repo/target/debug/deps/integration_effectual-1556f0b2de522b13.d: crates/core/../../tests/integration_effectual.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_effectual-1556f0b2de522b13.rmeta: crates/core/../../tests/integration_effectual.rs Cargo.toml

crates/core/../../tests/integration_effectual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
