/root/repo/target/debug/deps/table1-3840e8db6d1c74fe.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-3840e8db6d1c74fe: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
