/root/repo/target/debug/deps/table_moves-7ce8c530b29fbbb5.d: crates/bench/src/bin/table_moves.rs Cargo.toml

/root/repo/target/debug/deps/libtable_moves-7ce8c530b29fbbb5.rmeta: crates/bench/src/bin/table_moves.rs Cargo.toml

crates/bench/src/bin/table_moves.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
