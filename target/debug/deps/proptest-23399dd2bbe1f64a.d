/root/repo/target/debug/deps/proptest-23399dd2bbe1f64a.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-23399dd2bbe1f64a.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
