/root/repo/target/debug/deps/table1-5ea82f82eba8feca.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-5ea82f82eba8feca: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
