/root/repo/target/debug/deps/properties-871023b5b251ea66.d: crates/group/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-871023b5b251ea66.rmeta: crates/group/tests/properties.rs Cargo.toml

crates/group/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
