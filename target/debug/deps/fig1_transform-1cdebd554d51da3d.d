/root/repo/target/debug/deps/fig1_transform-1cdebd554d51da3d.d: crates/bench/src/bin/fig1_transform.rs

/root/repo/target/debug/deps/fig1_transform-1cdebd554d51da3d: crates/bench/src/bin/fig1_transform.rs

crates/bench/src/bin/fig1_transform.rs:
