/root/repo/target/debug/deps/qelect-8a91a6dc4fc6842b.d: crates/core/src/lib.rs crates/core/src/anonymous.rs crates/core/src/elect.rs crates/core/src/gathering.rs crates/core/src/map.rs crates/core/src/mapdraw.rs crates/core/src/petersen.rs crates/core/src/quantitative.rs crates/core/src/reduce.rs crates/core/src/replay.rs crates/core/src/schedule.rs crates/core/src/solvability.rs crates/core/src/stepquant.rs crates/core/src/translation_elect.rs crates/core/src/view_elect.rs

/root/repo/target/debug/deps/libqelect-8a91a6dc4fc6842b.rlib: crates/core/src/lib.rs crates/core/src/anonymous.rs crates/core/src/elect.rs crates/core/src/gathering.rs crates/core/src/map.rs crates/core/src/mapdraw.rs crates/core/src/petersen.rs crates/core/src/quantitative.rs crates/core/src/reduce.rs crates/core/src/replay.rs crates/core/src/schedule.rs crates/core/src/solvability.rs crates/core/src/stepquant.rs crates/core/src/translation_elect.rs crates/core/src/view_elect.rs

/root/repo/target/debug/deps/libqelect-8a91a6dc4fc6842b.rmeta: crates/core/src/lib.rs crates/core/src/anonymous.rs crates/core/src/elect.rs crates/core/src/gathering.rs crates/core/src/map.rs crates/core/src/mapdraw.rs crates/core/src/petersen.rs crates/core/src/quantitative.rs crates/core/src/reduce.rs crates/core/src/replay.rs crates/core/src/schedule.rs crates/core/src/solvability.rs crates/core/src/stepquant.rs crates/core/src/translation_elect.rs crates/core/src/view_elect.rs

crates/core/src/lib.rs:
crates/core/src/anonymous.rs:
crates/core/src/elect.rs:
crates/core/src/gathering.rs:
crates/core/src/map.rs:
crates/core/src/mapdraw.rs:
crates/core/src/petersen.rs:
crates/core/src/quantitative.rs:
crates/core/src/reduce.rs:
crates/core/src/replay.rs:
crates/core/src/schedule.rs:
crates/core/src/solvability.rs:
crates/core/src/stepquant.rs:
crates/core/src/translation_elect.rs:
crates/core/src/view_elect.rs:
