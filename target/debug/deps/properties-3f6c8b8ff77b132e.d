/root/repo/target/debug/deps/properties-3f6c8b8ff77b132e.d: crates/group/tests/properties.rs

/root/repo/target/debug/deps/properties-3f6c8b8ff77b132e: crates/group/tests/properties.rs

crates/group/tests/properties.rs:
