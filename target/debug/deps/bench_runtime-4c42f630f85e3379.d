/root/repo/target/debug/deps/bench_runtime-4c42f630f85e3379.d: crates/bench/benches/bench_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libbench_runtime-4c42f630f85e3379.rmeta: crates/bench/benches/bench_runtime.rs Cargo.toml

crates/bench/benches/bench_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
