/root/repo/target/debug/deps/bench_theory-8ad340c9f53a408d.d: crates/bench/benches/bench_theory.rs Cargo.toml

/root/repo/target/debug/deps/libbench_theory-8ad340c9f53a408d.rmeta: crates/bench/benches/bench_theory.rs Cargo.toml

crates/bench/benches/bench_theory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
