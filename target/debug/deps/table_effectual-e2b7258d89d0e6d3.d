/root/repo/target/debug/deps/table_effectual-e2b7258d89d0e6d3.d: crates/bench/src/bin/table_effectual.rs Cargo.toml

/root/repo/target/debug/deps/libtable_effectual-e2b7258d89d0e6d3.rmeta: crates/bench/src/bin/table_effectual.rs Cargo.toml

crates/bench/src/bin/table_effectual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
