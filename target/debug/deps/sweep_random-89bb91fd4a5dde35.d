/root/repo/target/debug/deps/sweep_random-89bb91fd4a5dde35.d: crates/bench/src/bin/sweep_random.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_random-89bb91fd4a5dde35.rmeta: crates/bench/src/bin/sweep_random.rs Cargo.toml

crates/bench/src/bin/sweep_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
