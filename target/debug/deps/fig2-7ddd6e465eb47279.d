/root/repo/target/debug/deps/fig2-7ddd6e465eb47279.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-7ddd6e465eb47279: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
