/root/repo/target/debug/deps/qelect_group-2aa0caecb5b757e0.d: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs

/root/repo/target/debug/deps/libqelect_group-2aa0caecb5b757e0.rlib: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs

/root/repo/target/debug/deps/libqelect_group-2aa0caecb5b757e0.rmeta: crates/group/src/lib.rs crates/group/src/cayley.rs crates/group/src/classify.rs crates/group/src/group.rs crates/group/src/marking.rs crates/group/src/perm.rs crates/group/src/recognition.rs crates/group/src/sabidussi.rs

crates/group/src/lib.rs:
crates/group/src/cayley.rs:
crates/group/src/classify.rs:
crates/group/src/group.rs:
crates/group/src/marking.rs:
crates/group/src/perm.rs:
crates/group/src/recognition.rs:
crates/group/src/sabidussi.rs:
