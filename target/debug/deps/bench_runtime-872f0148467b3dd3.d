/root/repo/target/debug/deps/bench_runtime-872f0148467b3dd3.d: crates/bench/benches/bench_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libbench_runtime-872f0148467b3dd3.rmeta: crates/bench/benches/bench_runtime.rs Cargo.toml

crates/bench/benches/bench_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
