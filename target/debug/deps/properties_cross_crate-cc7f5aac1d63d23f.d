/root/repo/target/debug/deps/properties_cross_crate-cc7f5aac1d63d23f.d: crates/core/../../tests/properties_cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libproperties_cross_crate-cc7f5aac1d63d23f.rmeta: crates/core/../../tests/properties_cross_crate.rs Cargo.toml

crates/core/../../tests/properties_cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
