/root/repo/target/debug/deps/fig1_transform-8b922e898f99cc0a.d: crates/bench/src/bin/fig1_transform.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_transform-8b922e898f99cc0a.rmeta: crates/bench/src/bin/fig1_transform.rs Cargo.toml

crates/bench/src/bin/fig1_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
