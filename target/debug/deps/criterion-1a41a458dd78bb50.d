/root/repo/target/debug/deps/criterion-1a41a458dd78bb50.d: crates/compat/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-1a41a458dd78bb50.rmeta: crates/compat/criterion/src/lib.rs Cargo.toml

crates/compat/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
