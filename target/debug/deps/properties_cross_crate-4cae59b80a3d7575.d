/root/repo/target/debug/deps/properties_cross_crate-4cae59b80a3d7575.d: crates/core/../../tests/properties_cross_crate.rs

/root/repo/target/debug/deps/properties_cross_crate-4cae59b80a3d7575: crates/core/../../tests/properties_cross_crate.rs

crates/core/../../tests/properties_cross_crate.rs:
