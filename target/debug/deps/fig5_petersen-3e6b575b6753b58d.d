/root/repo/target/debug/deps/fig5_petersen-3e6b575b6753b58d.d: crates/bench/src/bin/fig5_petersen.rs

/root/repo/target/debug/deps/fig5_petersen-3e6b575b6753b58d: crates/bench/src/bin/fig5_petersen.rs

crates/bench/src/bin/fig5_petersen.rs:
