/root/repo/target/debug/deps/qelect_bench-6335967781ed1934.d: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

/root/repo/target/debug/deps/libqelect_bench-6335967781ed1934.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
