/root/repo/target/debug/deps/qelectctl-766e0dbcfacdd62f.d: crates/bench/src/bin/qelectctl.rs Cargo.toml

/root/repo/target/debug/deps/libqelectctl-766e0dbcfacdd62f.rmeta: crates/bench/src/bin/qelectctl.rs Cargo.toml

crates/bench/src/bin/qelectctl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
