/root/repo/target/debug/deps/proptest-f9f1cb27485619ff.d: crates/compat/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-f9f1cb27485619ff.rmeta: crates/compat/proptest/src/lib.rs Cargo.toml

crates/compat/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
