/root/repo/target/debug/deps/properties-7ed81f4591bc48fc.d: crates/graph/tests/properties.rs

/root/repo/target/debug/deps/properties-7ed81f4591bc48fc: crates/graph/tests/properties.rs

crates/graph/tests/properties.rs:
