/root/repo/target/debug/deps/integration_effectual-efddbd01ab6d865e.d: crates/core/../../tests/integration_effectual.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_effectual-efddbd01ab6d865e.rmeta: crates/core/../../tests/integration_effectual.rs Cargo.toml

crates/core/../../tests/integration_effectual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
