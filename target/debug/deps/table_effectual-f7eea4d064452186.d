/root/repo/target/debug/deps/table_effectual-f7eea4d064452186.d: crates/bench/src/bin/table_effectual.rs

/root/repo/target/debug/deps/table_effectual-f7eea4d064452186: crates/bench/src/bin/table_effectual.rs

crates/bench/src/bin/table_effectual.rs:
