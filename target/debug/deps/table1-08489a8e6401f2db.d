/root/repo/target/debug/deps/table1-08489a8e6401f2db.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-08489a8e6401f2db.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
