/root/repo/target/debug/deps/bench_sched_ablation-1323005736933eed.d: crates/bench/benches/bench_sched_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sched_ablation-1323005736933eed.rmeta: crates/bench/benches/bench_sched_ablation.rs Cargo.toml

crates/bench/benches/bench_sched_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
