/root/repo/target/debug/deps/table_effectual-d3c8703b11d3d65d.d: crates/bench/src/bin/table_effectual.rs Cargo.toml

/root/repo/target/debug/deps/libtable_effectual-d3c8703b11d3d65d.rmeta: crates/bench/src/bin/table_effectual.rs Cargo.toml

crates/bench/src/bin/table_effectual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
