/root/repo/target/debug/deps/integration_sweep-6bb900a95bbb6a5a.d: crates/bench/../../tests/integration_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_sweep-6bb900a95bbb6a5a.rmeta: crates/bench/../../tests/integration_sweep.rs Cargo.toml

crates/bench/../../tests/integration_sweep.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
