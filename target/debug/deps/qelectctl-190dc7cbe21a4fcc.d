/root/repo/target/debug/deps/qelectctl-190dc7cbe21a4fcc.d: crates/bench/src/bin/qelectctl.rs

/root/repo/target/debug/deps/qelectctl-190dc7cbe21a4fcc: crates/bench/src/bin/qelectctl.rs

crates/bench/src/bin/qelectctl.rs:
