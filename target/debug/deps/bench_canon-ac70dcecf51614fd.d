/root/repo/target/debug/deps/bench_canon-ac70dcecf51614fd.d: crates/bench/benches/bench_canon.rs Cargo.toml

/root/repo/target/debug/deps/libbench_canon-ac70dcecf51614fd.rmeta: crates/bench/benches/bench_canon.rs Cargo.toml

crates/bench/benches/bench_canon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
