/root/repo/target/debug/deps/qelectctl-c5bf09da6aa27b69.d: crates/bench/src/bin/qelectctl.rs

/root/repo/target/debug/deps/qelectctl-c5bf09da6aa27b69: crates/bench/src/bin/qelectctl.rs

crates/bench/src/bin/qelectctl.rs:
