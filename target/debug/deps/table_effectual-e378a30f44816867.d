/root/repo/target/debug/deps/table_effectual-e378a30f44816867.d: crates/bench/src/bin/table_effectual.rs Cargo.toml

/root/repo/target/debug/deps/libtable_effectual-e378a30f44816867.rmeta: crates/bench/src/bin/table_effectual.rs Cargo.toml

crates/bench/src/bin/table_effectual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
