/root/repo/target/debug/deps/fig5_petersen-a3e7f0f090233ef3.d: crates/bench/src/bin/fig5_petersen.rs

/root/repo/target/debug/deps/fig5_petersen-a3e7f0f090233ef3: crates/bench/src/bin/fig5_petersen.rs

crates/bench/src/bin/fig5_petersen.rs:
