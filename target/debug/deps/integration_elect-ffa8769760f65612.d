/root/repo/target/debug/deps/integration_elect-ffa8769760f65612.d: crates/core/../../tests/integration_elect.rs

/root/repo/target/debug/deps/integration_elect-ffa8769760f65612: crates/core/../../tests/integration_elect.rs

crates/core/../../tests/integration_elect.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
