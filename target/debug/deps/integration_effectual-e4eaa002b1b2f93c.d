/root/repo/target/debug/deps/integration_effectual-e4eaa002b1b2f93c.d: crates/core/../../tests/integration_effectual.rs

/root/repo/target/debug/deps/integration_effectual-e4eaa002b1b2f93c: crates/core/../../tests/integration_effectual.rs

crates/core/../../tests/integration_effectual.rs:
