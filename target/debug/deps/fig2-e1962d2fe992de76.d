/root/repo/target/debug/deps/fig2-e1962d2fe992de76.d: crates/bench/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-e1962d2fe992de76: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
