/root/repo/target/debug/deps/qelect_bench-ddb8d7ef75079747.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/qelect_bench-ddb8d7ef75079747: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
