/root/repo/target/debug/deps/sweep_random-e004e2c8ec376ef1.d: crates/bench/src/bin/sweep_random.rs Cargo.toml

/root/repo/target/debug/deps/libsweep_random-e004e2c8ec376ef1.rmeta: crates/bench/src/bin/sweep_random.rs Cargo.toml

crates/bench/src/bin/sweep_random.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
