/root/repo/target/debug/deps/integration_sweep-7e04a2cdede33618.d: crates/bench/../../tests/integration_sweep.rs

/root/repo/target/debug/deps/integration_sweep-7e04a2cdede33618: crates/bench/../../tests/integration_sweep.rs

crates/bench/../../tests/integration_sweep.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
