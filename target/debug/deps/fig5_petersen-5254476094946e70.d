/root/repo/target/debug/deps/fig5_petersen-5254476094946e70.d: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_petersen-5254476094946e70.rmeta: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

crates/bench/src/bin/fig5_petersen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
