/root/repo/target/debug/deps/rand-0ab94903f610e287.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-0ab94903f610e287.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
