/root/repo/target/debug/deps/bench_explore-b9be63e157d30e5f.d: crates/bench/benches/bench_explore.rs Cargo.toml

/root/repo/target/debug/deps/libbench_explore-b9be63e157d30e5f.rmeta: crates/bench/benches/bench_explore.rs Cargo.toml

crates/bench/benches/bench_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
