/root/repo/target/debug/deps/bench_elect-98d961ded8b3e97b.d: crates/bench/benches/bench_elect.rs Cargo.toml

/root/repo/target/debug/deps/libbench_elect-98d961ded8b3e97b.rmeta: crates/bench/benches/bench_elect.rs Cargo.toml

crates/bench/benches/bench_elect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
