/root/repo/target/debug/deps/fig5_petersen-6bb76cfc2935391d.d: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_petersen-6bb76cfc2935391d.rmeta: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

crates/bench/src/bin/fig5_petersen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
