/root/repo/target/debug/deps/bench_canon-ca137d6bf23a73ad.d: crates/bench/benches/bench_canon.rs Cargo.toml

/root/repo/target/debug/deps/libbench_canon-ca137d6bf23a73ad.rmeta: crates/bench/benches/bench_canon.rs Cargo.toml

crates/bench/benches/bench_canon.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
