/root/repo/target/debug/deps/parking_lot-d1a65537dbba3f66.d: crates/compat/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-d1a65537dbba3f66.rmeta: crates/compat/parking_lot/src/lib.rs Cargo.toml

crates/compat/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
