/root/repo/target/debug/deps/bench_views-019fea5df3510d8d.d: crates/bench/benches/bench_views.rs Cargo.toml

/root/repo/target/debug/deps/libbench_views-019fea5df3510d8d.rmeta: crates/bench/benches/bench_views.rs Cargo.toml

crates/bench/benches/bench_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
