/root/repo/target/debug/deps/qelect_bench-17ebb7edb4b3f677.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libqelect_bench-17ebb7edb4b3f677.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
