/root/repo/target/debug/deps/integration_elect-5fa0ccaa93d58bff.d: crates/core/../../tests/integration_elect.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_elect-5fa0ccaa93d58bff.rmeta: crates/core/../../tests/integration_elect.rs Cargo.toml

crates/core/../../tests/integration_elect.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
