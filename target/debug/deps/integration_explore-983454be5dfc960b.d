/root/repo/target/debug/deps/integration_explore-983454be5dfc960b.d: crates/core/../../tests/integration_explore.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_explore-983454be5dfc960b.rmeta: crates/core/../../tests/integration_explore.rs Cargo.toml

crates/core/../../tests/integration_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
