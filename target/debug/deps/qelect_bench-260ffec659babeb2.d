/root/repo/target/debug/deps/qelect_bench-260ffec659babeb2.d: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

/root/repo/target/debug/deps/qelect_bench-260ffec659babeb2: crates/bench/src/lib.rs crates/bench/src/cli.rs crates/bench/src/sweep.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
crates/bench/src/sweep.rs:
