/root/repo/target/debug/deps/integration_elect-c4c17f22b534538c.d: crates/core/../../tests/integration_elect.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_elect-c4c17f22b534538c.rmeta: crates/core/../../tests/integration_elect.rs Cargo.toml

crates/core/../../tests/integration_elect.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
