/root/repo/target/debug/deps/integration_explore-9687722cff793b86.d: crates/core/../../tests/integration_explore.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_explore-9687722cff793b86.rmeta: crates/core/../../tests/integration_explore.rs Cargo.toml

crates/core/../../tests/integration_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
