/root/repo/target/debug/deps/qelect_agentsim-ba18bf425ba0689c.d: crates/agentsim/src/lib.rs crates/agentsim/src/color.rs crates/agentsim/src/ctx.rs crates/agentsim/src/explore.rs crates/agentsim/src/freerun.rs crates/agentsim/src/gated.rs crates/agentsim/src/message_net.rs crates/agentsim/src/metrics.rs crates/agentsim/src/sched.rs crates/agentsim/src/shuffle.rs crates/agentsim/src/sign.rs crates/agentsim/src/stepagent.rs crates/agentsim/src/trace.rs crates/agentsim/src/whiteboard.rs Cargo.toml

/root/repo/target/debug/deps/libqelect_agentsim-ba18bf425ba0689c.rmeta: crates/agentsim/src/lib.rs crates/agentsim/src/color.rs crates/agentsim/src/ctx.rs crates/agentsim/src/explore.rs crates/agentsim/src/freerun.rs crates/agentsim/src/gated.rs crates/agentsim/src/message_net.rs crates/agentsim/src/metrics.rs crates/agentsim/src/sched.rs crates/agentsim/src/shuffle.rs crates/agentsim/src/sign.rs crates/agentsim/src/stepagent.rs crates/agentsim/src/trace.rs crates/agentsim/src/whiteboard.rs Cargo.toml

crates/agentsim/src/lib.rs:
crates/agentsim/src/color.rs:
crates/agentsim/src/ctx.rs:
crates/agentsim/src/explore.rs:
crates/agentsim/src/freerun.rs:
crates/agentsim/src/gated.rs:
crates/agentsim/src/message_net.rs:
crates/agentsim/src/metrics.rs:
crates/agentsim/src/sched.rs:
crates/agentsim/src/shuffle.rs:
crates/agentsim/src/sign.rs:
crates/agentsim/src/stepagent.rs:
crates/agentsim/src/trace.rs:
crates/agentsim/src/whiteboard.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
