/root/repo/target/debug/deps/fig1_transform-5e4c64d342b4eeca.d: crates/bench/src/bin/fig1_transform.rs

/root/repo/target/debug/deps/fig1_transform-5e4c64d342b4eeca: crates/bench/src/bin/fig1_transform.rs

crates/bench/src/bin/fig1_transform.rs:
