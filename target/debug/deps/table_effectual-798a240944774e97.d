/root/repo/target/debug/deps/table_effectual-798a240944774e97.d: crates/bench/src/bin/table_effectual.rs

/root/repo/target/debug/deps/table_effectual-798a240944774e97: crates/bench/src/bin/table_effectual.rs

crates/bench/src/bin/table_effectual.rs:
