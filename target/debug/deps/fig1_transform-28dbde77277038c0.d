/root/repo/target/debug/deps/fig1_transform-28dbde77277038c0.d: crates/bench/src/bin/fig1_transform.rs

/root/repo/target/debug/deps/fig1_transform-28dbde77277038c0: crates/bench/src/bin/fig1_transform.rs

crates/bench/src/bin/fig1_transform.rs:
