/root/repo/target/debug/deps/integration_effectual-73a0b79a2b83f1aa.d: crates/core/../../tests/integration_effectual.rs

/root/repo/target/debug/deps/integration_effectual-73a0b79a2b83f1aa: crates/core/../../tests/integration_effectual.rs

crates/core/../../tests/integration_effectual.rs:
