/root/repo/target/debug/deps/bench_elect-69869f529ef9fc43.d: crates/bench/benches/bench_elect.rs Cargo.toml

/root/repo/target/debug/deps/libbench_elect-69869f529ef9fc43.rmeta: crates/bench/benches/bench_elect.rs Cargo.toml

crates/bench/benches/bench_elect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
