/root/repo/target/debug/deps/crossbeam-fe3125b0956d139d.d: crates/compat/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-fe3125b0956d139d.rmeta: crates/compat/crossbeam/src/lib.rs Cargo.toml

crates/compat/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
