/root/repo/target/debug/deps/sweep_random-b724d3926f35ddf8.d: crates/bench/src/bin/sweep_random.rs

/root/repo/target/debug/deps/sweep_random-b724d3926f35ddf8: crates/bench/src/bin/sweep_random.rs

crates/bench/src/bin/sweep_random.rs:
