/root/repo/target/debug/deps/table_moves-cadbfbccb72f3c68.d: crates/bench/src/bin/table_moves.rs

/root/repo/target/debug/deps/table_moves-cadbfbccb72f3c68: crates/bench/src/bin/table_moves.rs

crates/bench/src/bin/table_moves.rs:
