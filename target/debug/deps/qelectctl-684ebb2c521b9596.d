/root/repo/target/debug/deps/qelectctl-684ebb2c521b9596.d: crates/bench/src/bin/qelectctl.rs

/root/repo/target/debug/deps/qelectctl-684ebb2c521b9596: crates/bench/src/bin/qelectctl.rs

crates/bench/src/bin/qelectctl.rs:
