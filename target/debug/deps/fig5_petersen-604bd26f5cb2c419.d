/root/repo/target/debug/deps/fig5_petersen-604bd26f5cb2c419.d: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_petersen-604bd26f5cb2c419.rmeta: crates/bench/src/bin/fig5_petersen.rs Cargo.toml

crates/bench/src/bin/fig5_petersen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
