/root/repo/target/debug/deps/table_effectual-71e798825d14e452.d: crates/bench/src/bin/table_effectual.rs Cargo.toml

/root/repo/target/debug/deps/libtable_effectual-71e798825d14e452.rmeta: crates/bench/src/bin/table_effectual.rs Cargo.toml

crates/bench/src/bin/table_effectual.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
