/root/repo/target/debug/deps/properties_cross_crate-f6db5dfc7072da9f.d: crates/core/../../tests/properties_cross_crate.rs Cargo.toml

/root/repo/target/debug/deps/libproperties_cross_crate-f6db5dfc7072da9f.rmeta: crates/core/../../tests/properties_cross_crate.rs Cargo.toml

crates/core/../../tests/properties_cross_crate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
