/root/repo/target/debug/deps/rand-6963e69e1e5fa16a.d: crates/compat/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-6963e69e1e5fa16a.rmeta: crates/compat/rand/src/lib.rs Cargo.toml

crates/compat/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
