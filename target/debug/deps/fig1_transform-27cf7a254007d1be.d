/root/repo/target/debug/deps/fig1_transform-27cf7a254007d1be.d: crates/bench/src/bin/fig1_transform.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_transform-27cf7a254007d1be.rmeta: crates/bench/src/bin/fig1_transform.rs Cargo.toml

crates/bench/src/bin/fig1_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
