/root/repo/target/debug/deps/properties-70213915cb321f99.d: crates/group/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-70213915cb321f99.rmeta: crates/group/tests/properties.rs Cargo.toml

crates/group/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
