/root/repo/target/debug/deps/bench_explore-b741844380a7977e.d: crates/bench/benches/bench_explore.rs Cargo.toml

/root/repo/target/debug/deps/libbench_explore-b741844380a7977e.rmeta: crates/bench/benches/bench_explore.rs Cargo.toml

crates/bench/benches/bench_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
