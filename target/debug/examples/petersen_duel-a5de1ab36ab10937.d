/root/repo/target/debug/examples/petersen_duel-a5de1ab36ab10937.d: crates/core/../../examples/petersen_duel.rs

/root/repo/target/debug/examples/petersen_duel-a5de1ab36ab10937: crates/core/../../examples/petersen_duel.rs

crates/core/../../examples/petersen_duel.rs:
