/root/repo/target/debug/examples/qualitative_pitfall-36f19d4d5b47c23b.d: crates/core/../../examples/qualitative_pitfall.rs Cargo.toml

/root/repo/target/debug/examples/libqualitative_pitfall-36f19d4d5b47c23b.rmeta: crates/core/../../examples/qualitative_pitfall.rs Cargo.toml

crates/core/../../examples/qualitative_pitfall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
