/root/repo/target/debug/examples/qualitative_pitfall-91e991ff60fb5330.d: crates/core/../../examples/qualitative_pitfall.rs Cargo.toml

/root/repo/target/debug/examples/libqualitative_pitfall-91e991ff60fb5330.rmeta: crates/core/../../examples/qualitative_pitfall.rs Cargo.toml

crates/core/../../examples/qualitative_pitfall.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
