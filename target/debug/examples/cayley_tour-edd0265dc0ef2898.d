/root/repo/target/debug/examples/cayley_tour-edd0265dc0ef2898.d: crates/core/../../examples/cayley_tour.rs

/root/repo/target/debug/examples/cayley_tour-edd0265dc0ef2898: crates/core/../../examples/cayley_tour.rs

crates/core/../../examples/cayley_tour.rs:
