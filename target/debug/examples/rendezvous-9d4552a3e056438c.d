/root/repo/target/debug/examples/rendezvous-9d4552a3e056438c.d: crates/core/../../examples/rendezvous.rs Cargo.toml

/root/repo/target/debug/examples/librendezvous-9d4552a3e056438c.rmeta: crates/core/../../examples/rendezvous.rs Cargo.toml

crates/core/../../examples/rendezvous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
