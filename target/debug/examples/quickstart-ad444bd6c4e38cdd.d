/root/repo/target/debug/examples/quickstart-ad444bd6c4e38cdd.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ad444bd6c4e38cdd: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
