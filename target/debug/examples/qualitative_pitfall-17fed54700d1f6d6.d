/root/repo/target/debug/examples/qualitative_pitfall-17fed54700d1f6d6.d: crates/core/../../examples/qualitative_pitfall.rs

/root/repo/target/debug/examples/qualitative_pitfall-17fed54700d1f6d6: crates/core/../../examples/qualitative_pitfall.rs

crates/core/../../examples/qualitative_pitfall.rs:
