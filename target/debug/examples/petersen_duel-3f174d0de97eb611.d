/root/repo/target/debug/examples/petersen_duel-3f174d0de97eb611.d: crates/core/../../examples/petersen_duel.rs Cargo.toml

/root/repo/target/debug/examples/libpetersen_duel-3f174d0de97eb611.rmeta: crates/core/../../examples/petersen_duel.rs Cargo.toml

crates/core/../../examples/petersen_duel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
