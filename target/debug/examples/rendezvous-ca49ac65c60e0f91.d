/root/repo/target/debug/examples/rendezvous-ca49ac65c60e0f91.d: crates/core/../../examples/rendezvous.rs Cargo.toml

/root/repo/target/debug/examples/librendezvous-ca49ac65c60e0f91.rmeta: crates/core/../../examples/rendezvous.rs Cargo.toml

crates/core/../../examples/rendezvous.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
