/root/repo/target/debug/examples/cayley_tour-59e3ec1ff4deee9c.d: crates/core/../../examples/cayley_tour.rs Cargo.toml

/root/repo/target/debug/examples/libcayley_tour-59e3ec1ff4deee9c.rmeta: crates/core/../../examples/cayley_tour.rs Cargo.toml

crates/core/../../examples/cayley_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
