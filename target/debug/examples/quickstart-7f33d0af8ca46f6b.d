/root/repo/target/debug/examples/quickstart-7f33d0af8ca46f6b.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7f33d0af8ca46f6b.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
