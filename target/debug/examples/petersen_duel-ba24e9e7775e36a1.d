/root/repo/target/debug/examples/petersen_duel-ba24e9e7775e36a1.d: crates/core/../../examples/petersen_duel.rs Cargo.toml

/root/repo/target/debug/examples/libpetersen_duel-ba24e9e7775e36a1.rmeta: crates/core/../../examples/petersen_duel.rs Cargo.toml

crates/core/../../examples/petersen_duel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
