/root/repo/target/debug/examples/petersen_duel-c77aaf2378548cfe.d: crates/core/../../examples/petersen_duel.rs

/root/repo/target/debug/examples/petersen_duel-c77aaf2378548cfe: crates/core/../../examples/petersen_duel.rs

crates/core/../../examples/petersen_duel.rs:
