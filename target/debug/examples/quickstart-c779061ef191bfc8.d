/root/repo/target/debug/examples/quickstart-c779061ef191bfc8.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-c779061ef191bfc8.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
