/root/repo/target/debug/examples/cayley_tour-13eb8cf39fb7d5dc.d: crates/core/../../examples/cayley_tour.rs

/root/repo/target/debug/examples/cayley_tour-13eb8cf39fb7d5dc: crates/core/../../examples/cayley_tour.rs

crates/core/../../examples/cayley_tour.rs:
