/root/repo/target/debug/examples/quickstart-ba4261525eacd879.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ba4261525eacd879: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
