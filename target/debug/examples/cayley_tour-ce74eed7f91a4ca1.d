/root/repo/target/debug/examples/cayley_tour-ce74eed7f91a4ca1.d: crates/core/../../examples/cayley_tour.rs Cargo.toml

/root/repo/target/debug/examples/libcayley_tour-ce74eed7f91a4ca1.rmeta: crates/core/../../examples/cayley_tour.rs Cargo.toml

crates/core/../../examples/cayley_tour.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
