/root/repo/target/debug/examples/qualitative_pitfall-067af6b05785551b.d: crates/core/../../examples/qualitative_pitfall.rs

/root/repo/target/debug/examples/qualitative_pitfall-067af6b05785551b: crates/core/../../examples/qualitative_pitfall.rs

crates/core/../../examples/qualitative_pitfall.rs:
