/root/repo/target/debug/examples/rendezvous-a475fbfb8861eddc.d: crates/core/../../examples/rendezvous.rs

/root/repo/target/debug/examples/rendezvous-a475fbfb8861eddc: crates/core/../../examples/rendezvous.rs

crates/core/../../examples/rendezvous.rs:
