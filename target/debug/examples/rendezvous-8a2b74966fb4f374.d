/root/repo/target/debug/examples/rendezvous-8a2b74966fb4f374.d: crates/core/../../examples/rendezvous.rs

/root/repo/target/debug/examples/rendezvous-8a2b74966fb4f374: crates/core/../../examples/rendezvous.rs

crates/core/../../examples/rendezvous.rs:
