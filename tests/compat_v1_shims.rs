//! Compatibility pins for the deprecated v1 run shims.
//!
//! The legacy entry points (`run_gated`, `run_gated_with`, `run_free`,
//! `run_elect`) are `#[deprecated]` but must keep working until they are
//! removed: downstream users migrate on their own schedule. This test is
//! the one place in the repo allowed to call them — it pins each shim
//! against the unified/typed path it forwards to, so any behavioral
//! drift between the old and new surfaces fails CI.
#![allow(deprecated)]

use qelect::elect::{elect_agents, ElectFault};
use qelect::prelude::run_elect;
use qelect_agentsim::freerun::{run_free, try_run_free, FreeAgent, FreeRunConfig};
use qelect_agentsim::gated::{
    run_gated, run_gated_faulty, run_gated_with, try_run_gated_with, GatedAgent, RunConfig,
};
use qelect_agentsim::sched::Policy;
use qelect_agentsim::{
    run, AgentOutcome, Engine, FaultPlan, MobileCtx, RunConfig as UnifiedConfig,
};
use qelect_graph::{families, Bicolored};

fn instance() -> Bicolored {
    Bicolored::new(families::cycle(9).unwrap(), &[0, 1, 3]).unwrap()
}

fn agents(bc: &Bicolored) -> Vec<GatedAgent> {
    elect_agents(bc.r(), ElectFault::default())
}

#[test]
fn run_gated_shim_matches_run_gated_faulty() {
    let bc = instance();
    for seed in [0u64, 7, 1234] {
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let old = run_gated(&bc, cfg, agents(&bc));
        let new =
            run_gated_faulty(&bc, cfg, &FaultPlan::none(), agents(&bc)).expect("gated run failed");
        assert_eq!(old.outcomes, new.outcomes, "seed {seed}");
        assert_eq!(old.leader, new.leader, "seed {seed}");
        assert_eq!(old.interrupted, new.interrupted, "seed {seed}");
        assert_eq!(
            old.metrics.total_work(),
            new.metrics.total_work(),
            "seed {seed}: the shim must not change the deterministic schedule"
        );
    }
}

#[test]
fn run_gated_with_shim_matches_try_run_gated_with() {
    let bc = instance();
    let cfg = RunConfig {
        seed: 42,
        ..RunConfig::default()
    };
    let mut s1 = qelect_agentsim::LockstepScheduler::default();
    let mut s2 = qelect_agentsim::LockstepScheduler::default();
    let old = run_gated_with(&bc, cfg, agents(&bc), &mut s1);
    let new = try_run_gated_with(&bc, cfg, &FaultPlan::none(), agents(&bc), &mut s2)
        .expect("gated run failed");
    assert_eq!(old.outcomes, new.outcomes);
    assert_eq!(old.leader, new.leader);
    assert_eq!(old.trace, new.trace);
}

#[test]
fn run_elect_shim_matches_unified_run_election() {
    let bc = instance();
    for seed in [0u64, 9, 77] {
        let cfg = RunConfig {
            seed,
            ..RunConfig::default()
        };
        let old = run_elect(&bc, cfg);
        let new = qelect::prelude::run_election(&bc, &UnifiedConfig::new(seed))
            .expect("election run failed")
            .report;
        assert_eq!(old.outcomes, new.outcomes, "seed {seed}");
        assert_eq!(old.leader, new.leader, "seed {seed}");
        assert_eq!(old.clean_election(), new.clean_election(), "seed {seed}");
    }
}

#[test]
fn run_free_shim_matches_try_run_free() {
    // The free engine is nondeterministic, so pin the *verdict*, not the
    // interleaving: both paths must elect cleanly on a solvable instance.
    let bc = instance();
    let mk = |bc: &Bicolored| -> Vec<FreeAgent> {
        (0..bc.r())
            .map(|_| -> FreeAgent { Box::new(qelect::prelude::elect) })
            .collect()
    };
    let old = run_free(&bc, FreeRunConfig::default(), mk(&bc));
    let new = try_run_free(&bc, FreeRunConfig::default(), &FaultPlan::none(), mk(&bc))
        .expect("free run failed");
    assert!(old.clean_election(), "{:?}", old.outcomes);
    assert!(new.clean_election(), "{:?}", new.outcomes);
    assert_eq!(old.leader.is_some(), new.leader.is_some());
}

#[test]
fn deprecated_policy_knobs_still_reach_the_engine() {
    // The legacy config surface (per-policy fields) must keep steering
    // the same engine the unified builder reaches.
    let bc = instance();
    let cfg = RunConfig {
        seed: 5,
        policy: Policy::Lockstep,
        ..RunConfig::default()
    };
    let old = run_gated(&bc, cfg, agents(&bc));

    #[derive(Clone)]
    struct ElectProto;
    impl qelect_agentsim::Protocol for ElectProto {
        fn run<C: MobileCtx>(
            &self,
            ctx: &mut C,
        ) -> Result<AgentOutcome, qelect_agentsim::Interrupt> {
            qelect::prelude::elect(ctx)
        }
    }
    let new = run(
        &bc,
        &UnifiedConfig::new(5)
            .engine(Engine::Gated)
            .policy(Policy::Lockstep),
        &ElectProto,
    )
    .expect("unified run failed")
    .report;
    assert_eq!(old.outcomes, new.outcomes);
    assert_eq!(old.leader, new.leader);
}
