//! The schedule-exploration harness against the acceptance instances:
//! bounded exploration must *verify* ELECT on solvable and unsolvable
//! instances, and an injected gcd fault must be caught, shrunk, and
//! replayed to the same failure.

use qelect::elect::ElectFault;
use qelect::prelude::*;
use qelect::replay::{elect_schedule_fails, explore_elect_with_fault};
use qelect::solvability::{elect_succeeds, gcd_of_class_sizes};
use qelect_agentsim::explore::shrink_trace;
// The exploration drivers are gated-engine specific (schedule trees only
// exist under the deterministic scheduler), so this file uses the gated
// engine's own config rather than the unified builder.
use qelect_agentsim::gated::RunConfig;
use qelect_agentsim::sched::Policy;
use qelect_graph::{families, Bicolored};

fn explore_cfg(max_schedules: usize, swarm_runs: usize) -> ExploreConfig {
    ExploreConfig {
        preemption_bound: 2,
        max_schedules,
        swarm_runs,
        swarm_seed: 0x51AB,
    }
}

#[test]
fn exploration_verifies_elect_on_cycle9_with_five_agents() {
    // The README quick-start instance, now checked under an adversarial
    // schedule sweep instead of a single run: classes have gcd 1, so
    // every explored schedule must produce a clean election.
    let bc = Bicolored::new(families::cycle(9).unwrap(), &[0, 1, 2, 3, 4]).unwrap();
    assert!(elect_succeeds(&bc));
    let cfg = RunConfig {
        seed: 1,
        ..RunConfig::default()
    };
    let report = explore_elect(&bc, cfg, &explore_cfg(96, 16));
    assert!(
        report.passed(),
        "violation: {:?}",
        report.counterexample.map(|c| c.violation)
    );
    assert!(
        report.schedules_explored >= 96 + 16,
        "DFS budget plus the swarm fallback"
    );
    assert!(
        report.swarm_used,
        "the bounded tree is too large to exhaust here"
    );
    assert!(report.max_ticks > 0);
}

#[test]
fn exploration_never_elects_on_an_unsolvable_instance() {
    // Antipodal pair on C6: both classes have size 2, gcd 2 — Theorem
    // 3.1 says ELECT must refuse under *every* schedule. A single
    // leader under any explored interleaving would be a false election.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap();
    assert_eq!(gcd_of_class_sizes(&bc), 2);
    assert!(!elect_succeeds(&bc));
    let cfg = RunConfig {
        seed: 2,
        ..RunConfig::default()
    };
    let report = explore_elect(&bc, cfg, &explore_cfg(96, 16));
    assert!(
        report.passed(),
        "false election under some schedule: {:?}",
        report.counterexample.map(|c| c.violation)
    );
    assert!(report.schedules_explored >= 96);
}

#[test]
fn single_agent_exploration_completes_its_bounded_tree() {
    // With one agent there is exactly one cooperative schedule, so the
    // DFS exhausts the bounded tree — exploration is then a proof, not
    // a sample, and the report says so.
    let bc = Bicolored::new(families::cycle(4).unwrap(), &[0]).unwrap();
    let cfg = RunConfig {
        seed: 3,
        ..RunConfig::default()
    };
    let report = explore_elect(&bc, cfg, &explore_cfg(50, 8));
    assert!(report.passed());
    assert!(report.complete, "one agent ⇒ one schedule ⇒ exhaustive");
    assert!(
        !report.swarm_used,
        "no fallback needed when the tree completes"
    );
}

#[test]
fn injected_gcd_fault_is_caught_shrunk_and_replayed() {
    // The harness's own acceptance test: break the gcd verdict behind
    // the test-only fault flag and demand that exploration (a) finds a
    // violating schedule, (b) shrinks it, and (c) the shrunk trace
    // still replays to the same failure — while the healthy protocol
    // passes on that very schedule.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap();
    assert!(
        elect_succeeds(&bc),
        "the fault must be the only source of failure"
    );
    let fault = ElectFault {
        invert_gcd_check: true,
    };
    let cfg = RunConfig {
        seed: 7,
        ..RunConfig::default()
    };

    let report = explore_elect_with_fault(&bc, cfg, &explore_cfg(64, 8), fault);
    let ce = report
        .counterexample
        .expect("the injected fault must surface");
    assert!(!ce.schedule.is_empty());

    let trace = ce.to_trace(cfg.seed, bc.n(), "injected invert_gcd_check fault");
    let shrunk = shrink_trace(&trace, |s| elect_schedule_fails(&bc, cfg, fault, s));
    assert!(shrunk.schedule.len() <= trace.schedule.len());
    assert!(!shrunk.schedule.is_empty());

    // (c) the shrunk witness reproduces the failure under lenient replay…
    assert!(
        elect_schedule_fails(&bc, cfg, fault, &shrunk.schedule),
        "shrunk schedule no longer reproduces the injected failure"
    );
    // …and the failure is attributable to the fault, not the schedule.
    assert!(
        !elect_schedule_fails(&bc, cfg, ElectFault::default(), &shrunk.schedule),
        "the healthy protocol must pass on the shrunk schedule"
    );
}

#[test]
fn fault_also_surfaces_as_a_false_election_on_an_unsolvable_instance() {
    // The dual direction: inverting the gcd check on a gcd-2 instance
    // makes ELECT *elect* where the oracle forbids it. Exploration must
    // flag that too.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap();
    assert!(!elect_succeeds(&bc));
    let fault = ElectFault {
        invert_gcd_check: true,
    };
    let cfg = RunConfig {
        seed: 11,
        ..RunConfig::default()
    };
    let report = explore_elect_with_fault(&bc, cfg, &explore_cfg(64, 8), fault);
    assert!(
        report.counterexample.is_some(),
        "false election went unnoticed"
    );
}

#[test]
fn recorded_exploration_counterexample_replays_deterministically() {
    // A counterexample's trace is a complete witness: strict replay of
    // its schedule under the same seed re-derives the same outcomes.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap();
    let fault = ElectFault {
        invert_gcd_check: true,
    };
    let cfg = RunConfig {
        seed: 13,
        ..RunConfig::default()
    };
    let report = explore_elect_with_fault(&bc, cfg, &explore_cfg(32, 4), fault);
    let ce = report.counterexample.expect("fault surfaces");

    let mut scheduler = qelect_agentsim::ReplayScheduler::strict(ce.schedule.clone());
    let replayed = qelect_agentsim::gated::try_run_gated_with(
        &bc,
        RunConfig {
            record_trace: true,
            ..cfg
        },
        &qelect_agentsim::FaultPlan::none(),
        qelect::elect::elect_agents(bc.r(), fault),
        &mut scheduler,
    )
    .expect("replay run failed");
    assert_eq!(replayed.outcomes, ce.report.outcomes);
    assert_eq!(replayed.leader, ce.report.leader);
    assert_eq!(replayed.trace, ce.schedule);
}

#[test]
fn lockstep_policy_is_one_of_the_explored_schedules() {
    // Sanity link between the policy world and the exploration world:
    // the round-robin grant sequence (what Lockstep degenerates to when
    // every agent is always ready) is exactly the branch-0 …-0 DFS path
    // with one preemption per tick, so exploring with a generous bound
    // covers it. Here we just confirm a lockstep run's schedule is a
    // valid replayable witness.
    let bc = Bicolored::new(families::cycle(7).unwrap(), &[0, 1, 3]).unwrap();
    let cfg = RunConfig {
        seed: 5,
        policy: Policy::Lockstep,
        record_trace: true,
        ..RunConfig::default()
    };
    let (report, trace) = run_elect_recorded(&bc, cfg, "lockstep witness");
    assert!(report.clean_election());
    let replayed = replay_elect(&bc, &trace, true);
    assert_eq!(replayed.outcomes, report.outcomes);
}
