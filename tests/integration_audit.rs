//! Integration tests of the phase-resolved audit pipeline (E11).
//!
//! Pins three things end to end:
//!
//! 1. **Theorem 3.1** — `total_work ≤ c·r·|E|` on cycles and the
//!    Petersen graph, under *both* the gated and the free-running
//!    engine, with the generous-but-finite envelope constant the paper's
//!    O(r·|E|) bound promises exists.
//! 2. **Attribution exactness** — the per-phase rows of every audited
//!    instance sum exactly to the run totals (the span invariant,
//!    observed through the full `run_audit` pipeline rather than a unit
//!    fixture).
//! 3. **The regression gate** — a JSON report round-trips through the
//!    baseline parser and the gate accepts/rejects as configured, the
//!    same path `qelectctl audit` and CI exercise.

use qelect_bench::report::{
    check_against_baseline, run_audit, AuditConfig, AuditEngine, AuditInstance,
};
use qelect_graph::families;

/// The envelope constant: generous (the measured fits sit below 10 on
/// every standard family) but finite and fixed, so a complexity
/// regression that breaks the O(r·|E|) shape fails loudly.
const C_ENVELOPE: f64 = 40.0;

fn audit_instances() -> Vec<AuditInstance> {
    vec![
        AuditInstance {
            spec: "cycle:12".to_string(),
            graph: families::cycle(12).unwrap(),
            agents: vec![0, 1, 3],
        },
        AuditInstance {
            spec: "cycle:9".to_string(),
            graph: families::cycle(9).unwrap(),
            agents: vec![0, 3],
        },
        AuditInstance {
            spec: "petersen".to_string(),
            graph: families::petersen().unwrap(),
            agents: vec![0, 1],
        },
    ]
}

fn config(engines: Vec<AuditEngine>) -> AuditConfig {
    AuditConfig {
        instances: audit_instances(),
        seeds: vec![0, 1],
        engines,
    }
}

#[test]
fn theorem_3_1_bound_holds_under_the_gated_engine() {
    let report = run_audit(&config(vec![AuditEngine::Gated])).unwrap();
    for inst in &report.instances {
        assert!(
            inst.fitted_c <= C_ENVELOPE,
            "{}: fitted c = {:.2} blows the O(r·|E|) envelope {C_ENVELOPE}",
            inst.key,
            inst.fitted_c
        );
        assert!(inst.fitted_c > 0.0, "{}: protocol did no work", inst.key);
    }
}

#[test]
fn theorem_3_1_bound_holds_under_the_free_running_engine() {
    let report = run_audit(&config(vec![AuditEngine::Free])).unwrap();
    for inst in &report.instances {
        assert!(
            inst.fitted_c <= C_ENVELOPE,
            "{}: fitted c = {:.2} blows the O(r·|E|) envelope {C_ENVELOPE}",
            inst.key,
            inst.fitted_c
        );
    }
}

#[test]
fn phase_totals_sum_to_run_totals_on_every_instance() {
    let report = run_audit(&config(vec![AuditEngine::Gated, AuditEngine::Free])).unwrap();
    for inst in &report.instances {
        let sum = inst.phases.iter().fold((0u64, 0u64, 0u64), |acc, p| {
            (acc.0 + p.moves, acc.1 + p.accesses, acc.2 + p.waits)
        });
        assert_eq!(sum, inst.total, "{}: spans must telescope", inst.key);
        // The protocol's named phases all surface.
        assert!(
            inst.phases.iter().any(|p| p.phase == "map-drawing"),
            "{}: missing the map-drawing span",
            inst.key
        );
        assert!(
            inst.phases.iter().any(|p| p.phase == "classes"),
            "{}: missing the classes span",
            inst.key
        );
        // The classes phase is pure local computation: its cost is in
        // cache traffic, not moves.
        let classes = inst.phases.iter().find(|p| p.phase == "classes").unwrap();
        assert_eq!(classes.moves, 0, "{}: classes phase moved", inst.key);
        assert!(classes.cache.is_some(), "{}: classes cache delta", inst.key);
    }
}

#[test]
fn json_report_gates_like_the_ci_job() {
    let report = run_audit(&config(vec![AuditEngine::Gated])).unwrap();
    let json = report.to_json();
    // Self-comparison passes (tiny tolerance absorbs serialization
    // rounding); a baseline claiming half the constant regresses.
    assert!(check_against_baseline(&report, &json, 1e-6)
        .unwrap()
        .is_empty());
    let rows: Vec<String> = report
        .families
        .iter()
        .map(|f| {
            format!(
                "{{\"family\": \"{}\", \"instances\": {}, \"fitted_c\": {:.6}}}",
                f.family,
                f.instances,
                f.fitted_c / 2.0
            )
        })
        .collect();
    let halved = format!(
        "{{\"schema\": \"qelect-audit/1\", \"families\": [{}]}}",
        rows.join(",")
    );
    let msgs = check_against_baseline(&report, &halved, 0.25).unwrap();
    assert_eq!(msgs.len(), report.families.len(), "{msgs:?}");
}
