//! The Theorem 4.1 effectual protocol, cross-validated on Cayley
//! instances (exhaustive small sweeps) and on the Petersen divergence.

use qelect::prelude::*;
use qelect::solvability::{election_possible_cayley, impossible_by_thm21};
// The effectual/bespoke drivers (`run_translation_elect`, `run_petersen`)
// are gated-engine specific, so this file uses the gated config.
use qelect_agentsim::gated::RunConfig;
use qelect_agentsim::AgentOutcome;
use qelect_graph::{families, Bicolored};
use qelect_group::marking::{marking_schedule, verify_witness_labeling};

/// Crash-free ELECT through the non-deprecated typed entry (shadows the
/// deprecated `run_elect` shim re-exported by the prelude glob).
fn run_elect(bc: &Bicolored, cfg: RunConfig) -> RunReport {
    use qelect::elect::{elect_agents, ElectFault};
    qelect_agentsim::gated::run_gated_faulty(
        bc,
        cfg,
        &FaultPlan::none(),
        elect_agents(bc.r(), ElectFault::default()),
    )
    .expect("gated run failed")
}
use qelect_group::recognition::RecognitionBudget;
use qelect_group::CayleyGraph;

#[test]
fn effectual_on_exhaustive_small_cycles() {
    // Every placement of 1..=3 agents on C4..C6: the protocol's verdict
    // must match the oracle, and the oracle must be decisive.
    for n in 4..=6usize {
        let g = families::cycle(n).unwrap();
        for r in 1..=3usize.min(n) {
            for bc in Bicolored::all_placements(&g, r) {
                let oracle = election_possible_cayley(&bc, RecognitionBudget::default());
                let report = run_translation_elect(&bc, RunConfig::default());
                match oracle {
                    Some(true) => assert!(
                        report.clean_election(),
                        "C{n} {:?}: expected election, got {:?}",
                        bc.homebases(),
                        report.outcomes
                    ),
                    Some(false) => assert!(
                        report.unanimous_unsolvable(),
                        "C{n} {:?}: expected impossibility, got {:?}",
                        bc.homebases(),
                        report.outcomes
                    ),
                    None => panic!(
                        "oracle indecisive on Cayley instance C{n} {:?}",
                        bc.homebases()
                    ),
                }
            }
        }
    }
}

#[test]
fn effectual_on_hypercube_placements() {
    let g = families::hypercube(3).unwrap();
    for bc in Bicolored::all_placements(&g, 2) {
        let oracle = election_possible_cayley(&bc, RecognitionBudget::default());
        let report = run_translation_elect(&bc, RunConfig::default());
        match oracle {
            Some(true) => assert!(report.clean_election(), "{:?}", bc.homebases()),
            Some(false) => {
                assert!(report.unanimous_unsolvable(), "{:?}", bc.homebases())
            }
            None => panic!("gray zone hit on Q3 {:?}", bc.homebases()),
        }
    }
}

#[test]
fn impossibility_verdicts_backed_by_thm21_witnesses() {
    // Wherever the Cayley protocol says "impossible", a Theorem 2.1
    // labeling witness must exist (checked exhaustively on C4; the
    // witness labeling itself comes from the Theorem 4.1 marking
    // construction).
    let g = families::cycle(4).unwrap();
    for r in 1..=4usize {
        for bc in Bicolored::all_placements(&g, r) {
            if election_possible_cayley(&bc, RecognitionBudget::default()) == Some(false) {
                assert_eq!(
                    impossible_by_thm21(&bc, 100_000),
                    Some(true),
                    "no Thm 2.1 witness for {:?}",
                    bc.homebases()
                );
            }
        }
    }
}

#[test]
fn marking_construction_produces_verified_witnesses() {
    // The executable Theorem 4.1 proof on constructed Cayley graphs.
    let cases: Vec<(CayleyGraph, Vec<usize>)> = vec![
        (CayleyGraph::cycle(6).unwrap(), vec![0, 3]),
        (CayleyGraph::cycle(8).unwrap(), vec![0, 4]),
        (CayleyGraph::hypercube(3).unwrap(), vec![0, 7]),
        (CayleyGraph::torus(&[3, 3]).unwrap(), vec![0, 4, 8]),
    ];
    for (cg, hbs) in cases {
        let d = cg.translation_gcd(&hbs);
        let trace = marking_schedule(&cg, &hbs);
        assert_eq!(trace.d, d);
        assert!(trace.final_classes.iter().all(|c| c.len() == d));
        if d > 1 {
            let lab = verify_witness_labeling(&cg, &hbs);
            assert!(lab >= d, "witness labeling must certify impossibility");
        }
    }
}

#[test]
fn petersen_divergence_elect_fails_bespoke_succeeds() {
    // The Fig. 5 story end-to-end: same instance, three protocols.
    let bc = Bicolored::new(families::petersen().unwrap(), &[0, 1]).unwrap();

    // 1. Plain ELECT reports failure (gcd = 2).
    let elect_report = run_elect(&bc, RunConfig::default());
    assert!(
        elect_report.unanimous_unsolvable(),
        "{:?}",
        elect_report.outcomes
    );

    // 2. The effectual Cayley protocol declines (not a Cayley graph).
    let eff_report = run_translation_elect(&bc, RunConfig::default());
    assert!(eff_report
        .outcomes
        .iter()
        .all(|o| *o == AgentOutcome::Undecided));

    // 3. The bespoke protocol elects.
    let bespoke = qelect::petersen::run_petersen(&bc, RunConfig::default());
    assert!(bespoke.clean_election(), "{:?}", bespoke.outcomes);
}

#[test]
fn star_graph_instances() {
    // S_3 (= C6 as a graph) through the Cayley machinery.
    let g = families::star_graph(3).unwrap();
    let solvable = Bicolored::new(g.clone(), &[0, 1, 2]).unwrap();
    let oracle = election_possible_cayley(&solvable, RecognitionBudget::default());
    let report = run_translation_elect(&solvable, RunConfig::default());
    match oracle {
        Some(true) => assert!(report.clean_election(), "{:?}", report.outcomes),
        Some(false) => assert!(report.unanimous_unsolvable(), "{:?}", report.outcomes),
        None => panic!("gray zone on S3"),
    }
}
