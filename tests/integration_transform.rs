//! Fig. 1 end-to-end: the same agent state machine executed natively by
//! the mobile-agent engine and as messages on the anonymous processor
//! network must produce the same election result.

use qelect::stepquant::QuantMachine;
use qelect_agentsim::gated::{run_gated_faulty, GatedAgent, RunConfig, RunReport};
use qelect_agentsim::message_net::MessageNet;
use qelect_agentsim::stepagent::{drive, StepAgent};
use qelect_agentsim::FaultPlan;
use qelect_graph::{families, Bicolored};

/// Crash-free run through the non-deprecated typed entry.
fn run_gated(bc: &Bicolored, cfg: RunConfig, agents: Vec<GatedAgent>) -> RunReport {
    run_gated_faulty(bc, cfg, &FaultPlan::none(), agents).expect("gated run failed")
}

fn native_leader(bc: &Bicolored, ids: &[u64], seed: u64) -> Option<usize> {
    let agents: Vec<GatedAgent> = ids
        .iter()
        .map(|&id| -> GatedAgent { Box::new(move |ctx| drive(&mut QuantMachine::new(id), ctx)) })
        .collect();
    let cfg = RunConfig {
        seed,
        ..RunConfig::default()
    };
    let report = run_gated(bc, cfg, agents);
    assert!(
        report.clean_election(),
        "native: {:?} ({:?})",
        report.outcomes,
        report.interrupted
    );
    report.leader
}

fn transformed_leader(bc: &Bicolored, ids: &[u64], seed: u64) -> Option<usize> {
    let net = MessageNet::new(bc.clone(), seed);
    let agents: Vec<Box<dyn StepAgent>> = ids
        .iter()
        .map(|&id| -> Box<dyn StepAgent> { Box::new(QuantMachine::new(id)) })
        .collect();
    let report = net.run(agents);
    assert!(!report.deadlocked, "transformed run deadlocked");
    assert!(
        report.clean_election(),
        "transformed: {:?}",
        report.outcomes
    );
    report.leader
}

#[test]
fn outcome_preserved_across_families() {
    let cases: Vec<(&str, Bicolored, Vec<u64>)> = vec![
        (
            "C6 antipodal",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap(),
            vec![21, 9],
        ),
        (
            "C9 trio",
            Bicolored::new(families::cycle(9).unwrap(), &[0, 3, 6]).unwrap(),
            vec![4, 44, 14],
        ),
        (
            "Q3 pair",
            Bicolored::new(families::hypercube(3).unwrap(), &[0, 7]).unwrap(),
            vec![3, 1],
        ),
        (
            "Petersen pair",
            Bicolored::new(families::petersen().unwrap(), &[0, 6]).unwrap(),
            vec![8, 80],
        ),
        (
            "Torus 3x4 quartet",
            Bicolored::new(families::torus(&[3, 4]).unwrap(), &[0, 3, 6, 9]).unwrap(),
            vec![5, 2, 9, 1],
        ),
        (
            "Star graph S3",
            Bicolored::new(families::star_graph(3).unwrap(), &[0, 5]).unwrap(),
            vec![100, 50],
        ),
    ];
    for (label, bc, ids) in cases {
        let expected = ids
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| v)
            .map(|(i, _)| i);
        for seed in 0..4 {
            assert_eq!(
                native_leader(&bc, &ids, seed),
                expected,
                "{label}: native leader drifted (seed {seed})"
            );
            assert_eq!(
                transformed_leader(&bc, &ids, seed),
                expected,
                "{label}: transformed leader drifted (seed {seed})"
            );
        }
    }
}

#[test]
fn transformation_on_multigraph_gadget() {
    // The Fig. 2(c) gadget has loops and parallel edges; the DFS machine
    // must chart it correctly in both executions.
    let bc = Bicolored::new(families::fig2c_gadget().unwrap(), &[0]).unwrap();
    assert_eq!(native_leader(&bc, &[42], 1), Some(0));
    assert_eq!(transformed_leader(&bc, &[42], 1), Some(0));
}

#[test]
fn message_counts_are_reported() {
    let bc = Bicolored::new(families::cycle(8).unwrap(), &[0, 4]).unwrap();
    let net = MessageNet::new(bc, 3);
    let agents: Vec<Box<dyn StepAgent>> = vec![
        Box::new(QuantMachine::new(1)),
        Box::new(QuantMachine::new(2)),
    ];
    let report = net.run(agents);
    assert!(report.clean_election());
    // Each DFS move is one message: at least 2·|E| deliveries per agent
    // are plausible; just check the counter is live and bounded.
    assert!(report.deliveries > 8);
    assert!(report.deliveries < 10_000);
}
