//! Fault-injection acceptance (ISSUE 4): under any generated
//! [`FaultPlan`] in the eventually-restarting regime, crash-recovering
//! ELECT must still agree with the gcd oracle on **both** engines;
//! replaying an identical (plan, seed, schedule) must be
//! byte-identical; and a crash-free plan must not perturb behavior at
//! all — pinned against the committed C6 double-election trace.

use proptest::prelude::*;
use qelect::prelude::*;
use qelect::replay::{record_replay_elect_with_plan, shrink_failing_plan};
use qelect::solvability::elect_succeeds;
use qelect_agentsim::gated::try_run_gated_with;
use qelect_agentsim::gated::GatedAgent;
use qelect_agentsim::{AgentOutcome, Interrupt, ReplayScheduler};
use qelect_graph::{families, Bicolored};

fn acceptance_suite() -> Vec<(&'static str, Bicolored)> {
    vec![
        (
            "C6/trio (gcd 1)",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap(),
        ),
        (
            "C6/antipodal (gcd 2)",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap(),
        ),
        (
            "Petersen/pair (gcd 2)",
            Bicolored::new(families::petersen().unwrap(), &[0, 1]).unwrap(),
        ),
        (
            "C7/trio (gcd 1)",
            Bicolored::new(families::cycle(7).unwrap(), &[0, 1, 3]).unwrap(),
        ),
    ]
}

/// Everything two identical runs must share, formatted for assert_eq
/// diffs: outcomes, leader, recorded schedule, events, raw per-agent
/// counters, fault activity, and every closed span's exclusive cost.
fn fingerprint(report: &RunReport) -> String {
    let spans: Vec<String> = report
        .metrics
        .spans
        .iter()
        .map(|s| {
            let (m, a, w) = s.exclusive();
            format!("{}:{}:{m}:{a}:{w}", s.agent, s.name)
        })
        .collect();
    format!(
        "outcomes={:?}\nleader={:?}\ntrace={:?}\nevents={:?}\nper_agent={:?}\nfaults={:?}\nspans={}",
        report.outcomes,
        report.leader,
        report.trace,
        report.events,
        report.metrics.per_agent,
        report.metrics.faults,
        spans.join(","),
    )
}

#[test]
fn generated_plans_agree_with_oracle_on_both_engines() {
    // The acceptance criterion verbatim: with any generated plan whose
    // crashed agents all eventually restart, ELECT elects exactly when
    // gcd = 1 — checked against the oracle across both engines.
    let mut total_crashes = 0u64;
    for (label, bc) in acceptance_suite() {
        for seed in [0u64, 1] {
            for p in 0..2u64 {
                let plan = FaultPlan::generate(seed * 31 + p, bc.r(), 25, 2, 1);
                for engine in [Engine::Gated, Engine::Free] {
                    let run = qelect::replay::run_elect_with_plan(&bc, seed, engine, &plan)
                        .unwrap_or_else(|e| panic!("{label} {}: {e}", engine.name()));
                    qelect::replay::faulty_run_matches_oracle(&bc, &run).unwrap_or_else(|e| {
                        panic!(
                            "{label} {} seed {seed} plan {p}: {e}\nplan: {:?}",
                            engine.name(),
                            plan
                        )
                    });
                    total_crashes += run.faults.crashes;
                }
            }
        }
    }
    assert!(total_crashes > 0, "the sweep never injected a crash");
}

#[test]
fn crashed_agents_recover_and_report_span_metrics() {
    // A crash that actually fires must show up in the fault summary and
    // open a `recovery` span on the restarted incarnation.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap();
    let plan = FaultPlan {
        events: vec![qelect_agentsim::fault::FaultEvent {
            agent: 0,
            at_op: 30,
            action: qelect_agentsim::fault::FaultAction::Crash { restart_after: 1 },
        }],
        recovery: Default::default(),
    };
    let run = qelect::replay::run_elect_with_plan(&bc, 0, Engine::Gated, &plan).unwrap();
    assert!(run.clean_election(), "{:?}", run.report.outcomes);
    assert_eq!(run.faults.crashes, 1);
    assert_eq!(run.faults.restarts, 1);
    assert!(run.faults.lost_ops >= 1, "the pending op must be lost");
    assert!(
        run.report
            .metrics
            .spans
            .iter()
            .any(|s| s.name == "recovery" && s.agent == 0),
        "restarted incarnation must attribute its catch-up work"
    );
}

#[test]
fn exhausted_restart_budget_surfaces_as_interrupt() {
    // Crash more often than the recovery policy allows: the agent is
    // aborted with a typed interrupt, not a panic or a hang.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap();
    let plan = FaultPlan {
        events: vec![
            qelect_agentsim::fault::FaultEvent {
                agent: 0,
                at_op: 5,
                action: qelect_agentsim::fault::FaultAction::Crash { restart_after: 0 },
            },
            qelect_agentsim::fault::FaultEvent {
                agent: 0,
                at_op: 6,
                action: qelect_agentsim::fault::FaultAction::Crash { restart_after: 0 },
            },
        ],
        recovery: qelect_agentsim::fault::RecoveryPolicy {
            max_restarts: 1,
            ..Default::default()
        },
    };
    let run = qelect::replay::run_elect_with_plan(&bc, 0, Engine::Gated, &plan).unwrap();
    assert_eq!(
        run.report.outcomes[0],
        AgentOutcome::Interrupted(Interrupt::Crashed)
    );
    assert_eq!(run.faults.aborted, 1);
}

#[test]
fn agent_panics_surface_as_typed_run_errors() {
    // Satellite: lock-poisoning/panic paths are typed errors through
    // the unified API, on both engines.
    #[derive(Clone)]
    struct Bomb;
    impl Protocol for Bomb {
        fn run<C: MobileCtx>(&self, _ctx: &mut C) -> Result<AgentOutcome, Interrupt> {
            panic!("integration bomb");
        }
    }
    let bc = Bicolored::new(families::cycle(5).unwrap(), &[0]).unwrap();
    for engine in [Engine::Gated, Engine::Free] {
        let err = qelect_agentsim::run(&bc, &RunConfig::new(0).engine(engine), &Bomb)
            .expect_err("a panicking agent must not look like a clean run");
        match err {
            RunError::AgentPanicked { agent, message } => {
                assert_eq!(agent, 0, "{engine:?}");
                assert!(message.contains("integration bomb"), "{message}");
            }
            other => panic!("{engine:?}: expected AgentPanicked, got {other}"),
        }
    }
}

#[test]
fn crash_free_plan_is_behaviorally_invisible() {
    // The empty plan must not perturb anything: same outcomes, same
    // schedule, same events, same metrics as a run with no fault plumbing.
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap();
    let plain = run_election(&bc, &RunConfig::new(3).record_trace(true)).unwrap();
    let with_plan = run_election(
        &bc,
        &RunConfig::new(3)
            .record_trace(true)
            .faults(FaultPlan::none()),
    )
    .unwrap();
    assert_eq!(fingerprint(&plain.report), fingerprint(&with_plan.report));
    assert!(!with_plan.faults.any());
}

#[test]
fn crash_free_plan_reproduces_committed_c6_trace() {
    // The committed §1.3 witness, driven through the fault-aware engine
    // entry point with an empty plan: byte-identical schedule, events
    // and double election. Crash-free plans cost nothing and change
    // nothing.
    use qelect::anonymous::ring_probe;
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/c6_two_leaders.json"
    );
    let trace = Trace::load(path).expect("committed trace parses");
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap();
    let cfg = RunConfig::new(trace.seed).record_trace(true).to_gated();
    let agents: Vec<GatedAgent> = (0..bc.r())
        .map(|_| -> GatedAgent { Box::new(ring_probe) })
        .collect();
    let mut scheduler = ReplayScheduler::strict(trace.schedule.clone());
    let report = try_run_gated_with(&bc, cfg, &FaultPlan::none(), agents, &mut scheduler)
        .expect("crash-free replay cannot fail");
    let leaders = report
        .outcomes
        .iter()
        .filter(|o| **o == AgentOutcome::Leader)
        .count();
    assert_eq!(leaders, 2, "{:?}", report.outcomes);
    assert_eq!(report.trace, trace.schedule);
    assert_eq!(report.events, trace.events);
    assert!(!report.metrics.faults.any());
}

#[test]
fn shrink_keeps_passing_plans_whole() {
    // The ddmin driver only shrinks while the failure reproduces; on a
    // healthy protocol no generated plan fails the oracle, so the
    // driver must return the plan untouched (and the plan must pass).
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap();
    let plan = FaultPlan::generate(7, bc.r(), 25, 2, 1);
    let shrunk = shrink_failing_plan(&bc, 7, Engine::Gated, &plan);
    assert_eq!(shrunk, plan);
}

proptest! {
    // Simulation-heavy: each case is two full gated ELECT runs.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fault_plan_replay_is_byte_identical(
        seed in 0u64..1000,
        plan_seed in any::<u64>(),
        crashes in 0usize..4,
        delays in 0usize..3,
        trio in any::<bool>(),
    ) {
        // Determinism contract of schedule-addressed faults: recording
        // a gated run under any generated plan and strictly replaying
        // its schedule with the same plan reproduces outcomes, events,
        // per-agent counters, fault counters and span metrics exactly.
        let bc = if trio {
            Bicolored::new(families::cycle(7).unwrap(), &[0, 1, 3]).unwrap()
        } else {
            Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap()
        };
        let plan = FaultPlan::generate(plan_seed, bc.r(), 30, crashes, delays);
        let (first, second) = record_replay_elect_with_plan(&bc, seed, &plan).unwrap();
        prop_assert_eq!(fingerprint(&first.report), fingerprint(&second.report));
        // And both agree with the oracle (eventually-restarting regime).
        let solvable = elect_succeeds(&bc);
        prop_assert_eq!(first.clean_election(), solvable);
    }
}
