//! Integration tests for the parallel sweep engine and its canonical-form
//! cache — the differential layer of the PR:
//!
//! * aggregate tables are bit-identical whatever the worker count and
//!   whatever the cache state (determinism of the work-stealing driver);
//! * the cache observes real traffic during a sweep (hit rate > 0) and
//!   disabling it changes timing only, never results;
//! * the Petersen counterexample of §4 is pinned: a non-Cayley instance
//!   where ELECT correctly reports impossibility (gcd 2) under the
//!   cached class path;
//! * the committed C6 double-election witness replays bit-for-bit
//!   through the cached path, cold and warm.

use qelect::prelude::{gcd_of_class_sizes, Trace};
use qelect::solvability::elect_succeeds;
use qelect_agentsim::gated::{run_gated_faulty, RunConfig, RunReport};
use qelect_agentsim::FaultPlan;
use qelect_bench::sweep::{run_sweep, SweepBucket, SweepConfig};
use qelect_graph::cache;
use qelect_graph::{families, Bicolored};

/// Crash-free ELECT through the non-deprecated typed entry.
fn run_elect(bc: &Bicolored, cfg: RunConfig) -> RunReport {
    use qelect::elect::{elect_agents, ElectFault};
    run_gated_faulty(
        bc,
        cfg,
        &FaultPlan::none(),
        elect_agents(bc.r(), ElectFault::default()),
    )
    .expect("gated run failed")
}

fn small_config(workers: usize) -> SweepConfig {
    SweepConfig {
        trials: 8,
        workers,
        seed0: 42,
        repeats: 2,
        buckets: vec![
            SweepBucket {
                n_lo: 5,
                n_hi: 8,
                p: 0.3,
            },
            SweepBucket {
                n_lo: 8,
                n_hi: 11,
                p: 0.2,
            },
        ],
    }
}

/// Satellite (b): the aggregate table is a pure function of the config —
/// 1, 2 and 8 workers (the last heavily oversubscribed relative to the
/// trial count) must produce identical per-bucket statistics, including
/// the order-sensitive floating-point work-ratio averages.
#[test]
fn worker_count_does_not_change_aggregates() {
    let base = run_sweep(&small_config(1));
    assert!(base.all_agree(), "ELECT must agree with the gcd oracle");
    assert!(
        base.total_valid > 0,
        "the seed range must produce counted trials"
    );
    for workers in [2usize, 8] {
        let got = run_sweep(&small_config(workers));
        assert_eq!(got.buckets, base.buckets, "{workers} workers");
        assert_eq!(got.total_valid, base.total_valid);
        assert_eq!(got.total_agree, base.total_agree);
        assert_eq!(got.workers, workers, "the report records its worker count");
    }
}

/// The cache is a pure accelerator: cold, warm and disabled runs of the
/// same sweep agree bucket-for-bucket, and the warm run's stats window
/// shows the memo actually being hit. All global-flag manipulation stays
/// inside this one test so parallel tests in this binary never observe a
/// disabled cache.
#[test]
fn cache_changes_timing_never_results() {
    cache::global().set_enabled(true);
    let cold = run_sweep(&small_config(1));
    let warm = run_sweep(&small_config(1));
    assert_eq!(warm.buckets, cold.buckets, "warm cache, same table");
    assert!(
        warm.cache.hits > 0,
        "a warm sweep must answer some class lookups from the memo: {:?}",
        warm.cache
    );
    assert!(warm.cache.hit_rate() > 0.0);

    cache::global().set_enabled(false);
    let uncached = run_sweep(&small_config(1));
    cache::global().set_enabled(true);
    assert_eq!(uncached.buckets, cold.buckets, "disabled cache, same table");
}

/// Satellite (d), part 1: the §4 counterexample. The Petersen graph is
/// vertex-transitive but not a Cayley graph; with two adjacent agents
/// the class sizes are [2, 4, 4], so gcd = 2 and election is impossible
/// — and the agents, computing their classes through the cached path,
/// unanimously report exactly that.
#[test]
fn petersen_counterexample_is_pinned() {
    let bc = Bicolored::new(families::petersen().unwrap(), &[0, 1]).unwrap();
    assert_eq!(gcd_of_class_sizes(&bc), 2);
    assert!(!elect_succeeds(&bc));

    let oc = cache::ordered_classes_cached(&bc);
    let sizes: Vec<usize> = oc.classes.iter().map(|c| c.nodes.len()).collect();
    assert_eq!(sizes, vec![2, 4, 4], "two black, the whites split 4+4");
    assert_eq!(oc.ell, 1, "both agents occupy one equivalence class");

    let report = run_elect(&bc, RunConfig::default());
    assert!(report.interrupted.is_none(), "{:?}", report.outcomes);
    assert!(!report.clean_election());
    assert!(report.unanimous_unsolvable(), "{:?}", report.outcomes);
}

/// Satellite (d), part 2: the committed C6 double-election witness must
/// replay bit-for-bit when the ring probers' computations go through the
/// cached path — once cold (caches just cleared) and once warm.
#[test]
fn committed_c6_trace_replays_identically_under_cached_path() {
    use qelect_agentsim::AgentOutcome;
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/c6_two_leaders.json"
    );
    let trace = Trace::load(path).expect("committed trace parses");
    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap();

    cache::global().canon.clear();
    cache::global().classes.clear();
    let cold = qelect::replay::replay_ring_probe(&bc, &trace, true);
    let warm = qelect::replay::replay_ring_probe(&bc, &trace, true);

    for (label, report) in [("cold", &cold), ("warm", &warm)] {
        let leaders = report
            .outcomes
            .iter()
            .filter(|o| **o == AgentOutcome::Leader)
            .count();
        assert_eq!(
            leaders, 2,
            "{label}: the witness double-elects: {:?}",
            report.outcomes
        );
        assert!(!report.clean_election(), "{label}");
        assert_eq!(
            report.trace, trace.schedule,
            "{label}: schedule re-recorded"
        );
        assert_eq!(
            report.events, trace.events,
            "{label}: event log re-recorded"
        );
    }
    assert_eq!(cold.outcomes, warm.outcomes);
}
