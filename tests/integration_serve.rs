//! Loopback integration tests for `qelectd` (the serving daemon of
//! `qelect-bench`): concurrent clients, single-flight dedup,
//! malformed-request 400s, queue-full 503s, and graceful shutdown
//! draining every admitted job.
//!
//! Each test talks real HTTP/1.1 over a loopback `TcpStream` through
//! its own minimal client, so the daemon's wire format is exercised
//! end to end rather than through the crate's internal client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use qelect_agentsim::json::{envelope, get, Value};
use qelect_bench::serve::{start, ServeConfig, ServerHandle};

/// POST (or GET) once on a fresh connection; returns (status, body).
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    let code: u16 = status
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content-length");
            }
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf).expect("body");
    (code, String::from_utf8(buf).expect("utf8 body"))
}

fn parse_response(body: &str) -> Vec<(String, Value)> {
    envelope::check_document(body, envelope::RESPONSE).unwrap_or_else(|e| panic!("{e}: {body}"))
}

fn elect_body(spec: &str, seed: u64, extra: &str) -> String {
    format!(r#"{{"schema": "qelect-request/1", "spec": "{spec}", "seed": {seed}{extra}}}"#)
}

fn spawn(cfg: ServeConfig) -> ServerHandle {
    start(cfg).expect("bind loopback daemon")
}

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..Default::default()
    }
}

#[test]
fn healthz_metrics_and_elections_answer_versioned_json() {
    let server = spawn(test_config());
    let addr = server.addr();

    let (code, body) = http(addr, "GET", "/healthz", "");
    assert_eq!(code, 200);
    let health = parse_response(&body);
    assert_eq!(get(&health, "status").unwrap().as_str(), Some("ok"));

    // A solvable instance elects; the response carries the oracle facts.
    let (code, body) = http(
        addr,
        "POST",
        "/v1/elect",
        &elect_body("cycle:9@0,1,3", 7, ""),
    );
    assert_eq!(code, 200, "{body}");
    let resp = parse_response(&body);
    assert_eq!(get(&resp, "outcome").unwrap().as_str(), Some("elected"));
    assert_eq!(get(&resp, "solvable").unwrap().as_bool(), Some(true));
    assert_eq!(get(&resp, "gcd").unwrap().as_num(), Some(1.0));
    assert!(get(&resp, "leader").unwrap().as_num().is_some());
    assert_eq!(get(&resp, "coalesced").unwrap().as_bool(), Some(false));

    // An unsolvable one reports the unanimous verdict.
    let (code, body) = http(addr, "POST", "/v1/elect", &elect_body("cycle:6@0,3", 7, ""));
    assert_eq!(code, 200, "{body}");
    let resp = parse_response(&body);
    assert_eq!(get(&resp, "outcome").unwrap().as_str(), Some("unsolvable"));
    assert_eq!(get(&resp, "solvable").unwrap().as_bool(), Some(false));
    assert_eq!(get(&resp, "gcd").unwrap().as_num(), Some(2.0));

    let (code, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(code, 200);
    let metrics = parse_response(&body);
    assert_eq!(get(&metrics, "completed").unwrap().as_num(), Some(2.0));
    assert!(get(&metrics, "cache").is_some());
    assert!(get(&metrics, "phases").unwrap().as_array().is_some());
    assert!(get(&metrics, "classes").unwrap().as_array().is_some());

    let (code, _) = http(addr, "GET", "/nope", "");
    assert_eq!(code, 404);
    server.shutdown();
}

#[test]
fn concurrent_clients_all_agree_with_the_oracle() {
    let server = spawn(test_config());
    let addr = server.addr();
    let mix = [
        ("cycle:9@0,1,3", "elected"),
        ("cycle:6@0,3", "unsolvable"),
        ("petersen@0,1", "unsolvable"),
        ("cycle:12@0,1,3", "elected"),
    ];
    std::thread::scope(|scope| {
        for client in 0..8usize {
            let mix = &mix;
            scope.spawn(move || {
                for round in 0..4u64 {
                    let (spec, expected) = mix[(client + round as usize) % mix.len()];
                    // Distinct seeds: every request is a private run.
                    let seed = client as u64 * 1000 + round;
                    let (code, body) = http(addr, "POST", "/v1/elect", &elect_body(spec, seed, ""));
                    assert_eq!(code, 200, "{body}");
                    let resp = parse_response(&body);
                    assert_eq!(
                        get(&resp, "outcome").unwrap().as_str(),
                        Some(expected),
                        "{spec} seed {seed}"
                    );
                }
            });
        }
    });
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = parse_response(&body);
    assert_eq!(get(&metrics, "completed").unwrap().as_num(), Some(32.0));
    server.shutdown();
}

#[test]
fn identical_inflight_requests_coalesce_to_one_run() {
    let server = spawn(ServeConfig {
        debug: true,
        workers: 2,
        ..test_config()
    });
    let addr = server.addr();
    // Two byte-identical requests; the debug sleep holds the first in a
    // worker long enough for the second to attach to its result cell.
    let body = elect_body("cycle:9@0,1,3", 42, r#", "debug_sleep_ms": 300"#);
    let coalesced_count = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for wait_ms in [0u64, 100] {
            let (body, coalesced_count) = (&body, &coalesced_count);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(wait_ms));
                let (code, resp_body) = http(addr, "POST", "/v1/elect", body);
                assert_eq!(code, 200, "{resp_body}");
                let resp = parse_response(&resp_body);
                assert_eq!(get(&resp, "outcome").unwrap().as_str(), Some("elected"));
                if get(&resp, "coalesced").unwrap().as_bool() == Some(true) {
                    coalesced_count.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    assert_eq!(
        coalesced_count.load(Ordering::SeqCst),
        1,
        "exactly the second arrival coalesces"
    );
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = parse_response(&body);
    assert_eq!(
        get(&metrics, "completed").unwrap().as_num(),
        Some(1.0),
        "one run served both requests"
    );
    assert_eq!(get(&metrics, "coalesced").unwrap().as_num(), Some(1.0));
    server.shutdown();
}

#[test]
fn malformed_requests_get_400_without_touching_the_queue() {
    let server = spawn(test_config());
    let addr = server.addr();
    for bad in [
        "not json at all",
        r#"{"spec": "cycle:9"}"#,
        r#"{"schema": "qelect-sweep/1", "spec": "cycle:9"}"#,
        r#"{"schema": "qelect-request/1"}"#,
        r#"{"schema": "qelect-request/1", "spec": "nosuch:9"}"#,
        r#"{"schema": "qelect-request/1", "spec": "cycle:9@0,0"}"#,
        r#"{"schema": "qelect-request/1", "spec": "cycle:9", "engine": "warp"}"#,
        r#"{"schema": "qelect-request/1", "spec": "cycle:9", "policy": "warp"}"#,
        r#"{"schema": "qelect-request/1", "spec": "cycle:9", "faults": {"bogus": 1}}"#,
    ] {
        let (code, body) = http(addr, "POST", "/v1/elect", bad);
        assert_eq!(code, 400, "{bad} -> {body}");
        let resp = parse_response(&body);
        assert_eq!(get(&resp, "kind").unwrap().as_str(), Some("error"));
        assert!(get(&resp, "error").unwrap().as_str().is_some());
    }
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = parse_response(&body);
    assert_eq!(get(&metrics, "bad_requests").unwrap().as_num(), Some(9.0));
    assert_eq!(get(&metrics, "requests").unwrap().as_num(), Some(0.0));
    assert_eq!(get(&metrics, "completed").unwrap().as_num(), Some(0.0));
    server.shutdown();
}

#[test]
fn queue_overflow_answers_503_with_retry_hint() {
    let server = spawn(ServeConfig {
        debug: true,
        workers: 1,
        queue_cap: 1,
        retry_after_ms: 25,
        ..test_config()
    });
    let addr = server.addr();
    let slow = |seed| elect_body("cycle:9@0,1,3", seed, r#", "debug_sleep_ms": 500"#);
    std::thread::scope(|scope| {
        // Seed 1 occupies the single worker; seed 2 fills the queue.
        scope.spawn(|| {
            let (code, body) = http(addr, "POST", "/v1/elect", &slow(1));
            assert_eq!(code, 200, "{body}");
        });
        std::thread::sleep(Duration::from_millis(150));
        scope.spawn(|| {
            let (code, body) = http(addr, "POST", "/v1/elect", &slow(2));
            assert_eq!(code, 200, "{body}");
        });
        std::thread::sleep(Duration::from_millis(150));
        // Seed 3 finds the queue full: backpressure, not buffering.
        let (code, body) = http(addr, "POST", "/v1/elect", &slow(3));
        assert_eq!(code, 503, "{body}");
        let resp = parse_response(&body);
        assert_eq!(get(&resp, "kind").unwrap().as_str(), Some("error"));
        assert_eq!(get(&resp, "retry_after_ms").unwrap().as_num(), Some(25.0));
    });
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = parse_response(&body);
    assert_eq!(
        get(&metrics, "rejected_queue_full").unwrap().as_num(),
        Some(1.0)
    );
    assert_eq!(get(&metrics, "completed").unwrap().as_num(), Some(2.0));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_admitted_job() {
    let server = spawn(ServeConfig {
        debug: true,
        workers: 2,
        queue_cap: 32,
        ..test_config()
    });
    let addr = server.addr();
    let answered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Eight slow jobs: two run, six sit in the queue when the
        // shutdown lands. All eight must still be answered.
        for seed in 0..8u64 {
            let answered = &answered;
            scope.spawn(move || {
                let body = elect_body("cycle:9@0,1,3", seed, r#", "debug_sleep_ms": 150"#);
                let (code, resp_body) = http(addr, "POST", "/v1/elect", &body);
                assert_eq!(code, 200, "seed {seed}: {resp_body}");
                let resp = parse_response(&resp_body);
                assert_eq!(get(&resp, "outcome").unwrap().as_str(), Some("elected"));
                answered.fetch_add(1, Ordering::SeqCst);
            });
        }
        std::thread::sleep(Duration::from_millis(80));
        let (code, body) = http(addr, "POST", "/shutdown", "");
        assert_eq!(code, 200, "{body}");
        let resp = parse_response(&body);
        assert_eq!(get(&resp, "status").unwrap().as_str(), Some("draining"));
        // New elections are refused while the queue drains.
        let late = elect_body("cycle:6@0,3", 99, "");
        let (code, body) = http(addr, "POST", "/v1/elect", &late);
        assert_eq!(code, 503, "{body}");
    });
    assert_eq!(answered.load(Ordering::SeqCst), 8, "no dropped responses");
    let final_metrics = server.shutdown();
    let metrics = parse_response(&final_metrics);
    assert_eq!(get(&metrics, "completed").unwrap().as_num(), Some(8.0));
    assert_eq!(
        get(&metrics, "rejected_draining").unwrap().as_num(),
        Some(1.0)
    );
}
