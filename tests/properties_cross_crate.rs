//! Property-based cross-crate invariants (proptest).
//!
//! Random connected graphs and placements; the paper's structural
//! invariants must hold on all of them:
//!
//! * Lemma 2.1 — label-equivalence classes have one common size;
//! * Equation 1 — `~lab` refines `~view`;
//! * surroundings decide Definition 2.1 equivalence (classes = orbits);
//! * the ELECT schedule's final `d` equals `gcd(|C_i|)`;
//! * MAP-DRAWING reconstructs the instance up to isomorphism, under any
//!   seed/scrambling;
//! * ELECT's verdict equals the gcd oracle on random instances.

use proptest::prelude::*;
use qelect::prelude::*;
// These properties drive scheduler-level knobs (policies, explicit
// seeds, bounded exploration), so they use the gated engine's own
// config struct rather than the unified builder.
use qelect::schedule::Schedule;
use qelect::solvability::elect_succeeds;
use qelect_agentsim::gated::RunConfig;
use qelect_graph::canon::are_isomorphic;
use qelect_graph::surrounding::{gcd, ordered_classes};
use qelect_graph::{automorphism, families, symmetricity, Bicolored, ColoredDigraph};

/// Crash-free ELECT through the non-deprecated typed entry (shadows the
/// deprecated `run_elect` shim re-exported by the prelude glob).
fn run_elect(bc: &Bicolored, cfg: RunConfig) -> RunReport {
    use qelect::elect::{elect_agents, ElectFault};
    qelect_agentsim::gated::run_gated_faulty(
        bc,
        cfg,
        &FaultPlan::none(),
        elect_agents(bc.r(), ElectFault::default()),
    )
    .expect("gated run failed")
}

/// A random connected graph + placement strategy.
fn instance_strategy() -> impl Strategy<Value = Bicolored> {
    (4usize..10, 0.05f64..0.5, any::<u64>(), 1usize..4).prop_map(|(n, p, seed, r)| {
        let g = families::random_connected(n, p, seed).unwrap();
        let r = r.min(n);
        // Spread home-bases deterministically from the seed.
        let mut homes: Vec<usize> = Vec::new();
        let mut x = seed;
        while homes.len() < r {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) as usize % n;
            if !homes.contains(&v) {
                homes.push(v);
            }
        }
        Bicolored::new(g, &homes).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lemma_2_1_equal_lab_class_sizes(bc in instance_strategy()) {
        let size = automorphism::lab_class_common_size(&bc);
        prop_assert!(size.is_ok(), "Lemma 2.1 violated: {size:?}");
    }

    #[test]
    fn equation_1_lab_refines_view(bc in instance_strategy()) {
        prop_assert!(symmetricity::equation_1_holds(&bc));
    }

    #[test]
    fn lab_refines_node_equivalence(bc in instance_strategy()) {
        prop_assert!(automorphism::lab_refines_node_equivalence(&bc));
    }

    #[test]
    fn surroundings_agree_with_orbits(bc in instance_strategy()) {
        let oc = ordered_classes(&bc);
        let orbits = automorphism::node_equivalence(&bc);
        prop_assert_eq!(oc.k(), orbits.k);
        for class in &oc.classes {
            let o = orbits.class[class.nodes[0]];
            for &v in &class.nodes {
                prop_assert_eq!(orbits.class[v], o);
            }
        }
    }

    #[test]
    fn schedule_final_d_is_the_gcd(bc in instance_strategy()) {
        let oc = ordered_classes(&bc);
        let sizes: Vec<usize> = oc.classes.iter().map(|c| c.len()).collect();
        let schedule = Schedule::from_class_sizes(&sizes, oc.ell);
        let expected = sizes.iter().fold(0usize, |a, &b| gcd(a, b));
        prop_assert_eq!(schedule.final_d, expected);
    }

    #[test]
    fn classes_are_labeling_invariant(bc in instance_strategy(), seed in any::<u64>()) {
        let scrambled = qelect_graph::labeling::scramble(bc.graph(), seed).unwrap();
        let sc = Bicolored::new(scrambled, bc.homebases()).unwrap();
        let a: Vec<usize> = ordered_classes(&bc).classes.iter().map(|c| c.len()).collect();
        let b: Vec<usize> = ordered_classes(&sc).classes.iter().map(|c| c.len()).collect();
        prop_assert_eq!(a, b);
    }
}

proptest! {
    // Simulation-heavy properties get fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn map_drawing_reconstructs_instance(bc in instance_strategy(), seed in any::<u64>()) {
        use qelect_agentsim::gated::{run_gated_faulty, GatedAgent};
        use std::sync::mpsc;
        let (tx, rx) = mpsc::channel();
        let agents: Vec<GatedAgent> = (0..bc.r())
            .map(|_| -> GatedAgent {
                let tx = tx.clone();
                Box::new(move |ctx| {
                    let map = qelect::mapdraw::map_drawing(ctx)?;
                    tx.send(map).ok();
                    Ok(qelect_agentsim::AgentOutcome::Defeated)
                })
            })
            .collect();
        let cfg = RunConfig { seed, ..RunConfig::default() };
        let report = run_gated_faulty(&bc, cfg, &FaultPlan::none(), agents)
            .expect("gated run failed");
        prop_assert!(report.interrupted.is_none());
        drop(tx);
        for map in rx {
            let drawn = map.to_bicolored();
            let a = ColoredDigraph::from_bicolored(&drawn);
            let b = ColoredDigraph::from_bicolored(&bc);
            prop_assert!(are_isomorphic(&a, &b));
        }
    }

    #[test]
    fn elect_matches_oracle_on_random_instances(bc in instance_strategy(), seed in any::<u64>()) {
        let report = run_elect(&bc, RunConfig { seed, ..RunConfig::default() });
        let expected = elect_succeeds(&bc);
        prop_assert!(report.interrupted.is_none(), "interrupted: {:?}", report.interrupted);
        if expected {
            prop_assert!(report.clean_election(), "{:?}", report.outcomes);
        } else {
            prop_assert!(report.unanimous_unsolvable(), "{:?}", report.outcomes);
        }
    }
}

proptest! {
    // The schedule-adversary matrix: ELECT's verdict is a property of
    // the *instance* (Theorem 3.1), so it must not depend on which
    // adversary drives the interleaving. Each random instance is run
    // under the deterministic policies, several random schedules, and a
    // small bounded exploration — all must agree with the gcd oracle.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn elect_verdict_survives_every_scheduling_adversary(
        bc in instance_strategy(),
        seed in any::<u64>(),
    ) {
        use qelect_agentsim::sched::Policy;
        let expected = elect_succeeds(&bc);

        for policy in [Policy::Lockstep, Policy::RoundRobin, Policy::GreedyLowest] {
            let report = run_elect(&bc, RunConfig { seed, policy, ..RunConfig::default() });
            prop_assert!(report.interrupted.is_none(), "{policy:?} interrupted");
            prop_assert_eq!(
                report.clean_election(), expected,
                "{:?} disagrees with the oracle: {:?}", policy, report.outcomes
            );
            if !expected {
                prop_assert!(report.unanimous_unsolvable(), "{:?}: {:?}", policy, report.outcomes);
            }
        }

        for k in 0..3u64 {
            let cfg = RunConfig {
                seed: seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                policy: Policy::Random,
                ..RunConfig::default()
            };
            let report = run_elect(&bc, cfg);
            prop_assert_eq!(
                report.clean_election(), expected,
                "random schedule #{} disagrees: {:?}", k, report.outcomes
            );
        }

        let ecfg = ExploreConfig {
            preemption_bound: 1,
            max_schedules: 12,
            swarm_runs: 4,
            swarm_seed: seed,
        };
        let report = explore_elect(&bc, RunConfig { seed, ..RunConfig::default() }, &ecfg);
        prop_assert!(
            report.counterexample.is_none(),
            "exploration found a schedule disagreeing with the oracle: {:?}",
            report.counterexample.map(|ce| ce.violation)
        );
    }
}
