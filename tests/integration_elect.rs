//! Cross-crate integration: Protocol ELECT against the solvability
//! oracles, across graph families, placements, schedulers and engines.

use qelect::prelude::*;
use qelect::solvability::{elect_succeeds, gcd_of_class_sizes};
use qelect_agentsim::sched::Policy;
use qelect_graph::{families, labeling, Bicolored};

fn suite() -> Vec<(&'static str, Bicolored)> {
    vec![
        (
            "C5/1",
            Bicolored::new(families::cycle(5).unwrap(), &[0]).unwrap(),
        ),
        (
            "C6/antipodal",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap(),
        ),
        (
            "C6/trio",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap(),
        ),
        (
            "C7/trio",
            Bicolored::new(families::cycle(7).unwrap(), &[0, 1, 3]).unwrap(),
        ),
        (
            "P4/pair",
            Bicolored::new(families::path(4).unwrap(), &[0, 1]).unwrap(),
        ),
        (
            "Q3/antipodal",
            Bicolored::new(families::hypercube(3).unwrap(), &[0, 7]).unwrap(),
        ),
        (
            "Q3/trio",
            Bicolored::new(families::hypercube(3).unwrap(), &[0, 1, 3]).unwrap(),
        ),
        (
            "Petersen/pair",
            Bicolored::new(families::petersen().unwrap(), &[0, 1]).unwrap(),
        ),
        (
            "Torus3x3/pair",
            Bicolored::new(families::torus(&[3, 3]).unwrap(), &[0, 4]).unwrap(),
        ),
        (
            "Star/center+leaf",
            Bicolored::new(families::star(4).unwrap(), &[0, 1]).unwrap(),
        ),
        (
            "K4/pair",
            Bicolored::new(families::complete(4).unwrap(), &[0, 1]).unwrap(),
        ),
        (
            "Tree/pair",
            Bicolored::new(families::binary_tree(2).unwrap(), &[0, 3]).unwrap(),
        ),
    ]
}

#[test]
fn elect_agrees_with_gcd_oracle_across_suite() {
    for (label, bc) in suite() {
        let expected = elect_succeeds(&bc);
        for seed in [1, 2] {
            let report = run_election(&bc, &RunConfig::new(seed)).unwrap().report;
            if expected {
                assert!(
                    report.clean_election(),
                    "{label}: expected election, got {:?} ({:?})",
                    report.outcomes,
                    report.interrupted
                );
            } else {
                assert!(
                    report.unanimous_unsolvable(),
                    "{label}: expected failure report, got {:?} ({:?})",
                    report.outcomes,
                    report.interrupted
                );
            }
        }
    }
}

#[test]
fn elect_is_labeling_independent() {
    // Effectual protocols must survive adversarial edge-labelings: run
    // ELECT on scrambled-port variants and require identical verdicts.
    for (label, bc) in suite() {
        let expected = elect_succeeds(&bc);
        for seed in [11, 12] {
            let scrambled = labeling::scramble(bc.graph(), seed).unwrap();
            let sc = Bicolored::new(scrambled, bc.homebases()).unwrap();
            // The oracle itself is labeling-independent:
            assert_eq!(
                gcd_of_class_sizes(&sc),
                gcd_of_class_sizes(&bc),
                "{label}: classes depend on ports?!"
            );
            let report = run_election(&sc, &RunConfig::new(seed)).unwrap().report;
            assert_eq!(
                report.clean_election(),
                expected,
                "{label} scrambled(seed {seed}): {:?}",
                report.outcomes
            );
        }
    }
}

#[test]
fn elect_consistent_across_scheduler_policies() {
    let bc = Bicolored::new(families::cycle(7).unwrap(), &[0, 1, 3]).unwrap();
    for policy in [
        Policy::Random,
        Policy::RoundRobin,
        Policy::Lockstep,
        Policy::GreedyLowest,
    ] {
        let report = run_election(&bc, &RunConfig::new(5).policy(policy))
            .unwrap()
            .report;
        assert!(report.clean_election(), "{policy:?}: {:?}", report.outcomes);
    }
}

#[test]
fn elect_runs_on_the_parallel_engine() {
    // The same protocol code on the free-running engine: outcomes must
    // match the gated verdicts (true parallel agents, mutexed boards).
    for (label, bc) in [
        (
            "C6/trio",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 2, 3]).unwrap(),
        ),
        (
            "C6/antipodal",
            Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap(),
        ),
    ] {
        let expected = elect_succeeds(&bc);
        let election = run_election(&bc, &RunConfig::new(0).engine(Engine::Free)).unwrap();
        assert_eq!(election.engine, "free");
        assert_eq!(
            election.clean_election(),
            expected,
            "{label}: {:?} ({:?})",
            election.report.outcomes,
            election.report.interrupted
        );
    }
}

#[test]
fn quantitative_baseline_is_universal_where_elect_fails() {
    // Table 1, quantitative row: success even on the gcd > 1 instances.
    for (label, bc) in suite() {
        let ids: Vec<u64> = (0..bc.r() as u64).map(|i| 100 + 7 * i).collect();
        let report = run_quantitative(&bc, RunConfig::default().to_gated(), &ids);
        assert!(
            report.clean_election(),
            "{label}: quantitative must be universal, got {:?}",
            report.outcomes
        );
        assert_eq!(report.leader, Some(bc.r() - 1), "{label}: max label wins");
    }
}

#[test]
fn elect_exhaustive_over_small_placements() {
    // Every placement of 1..=3 agents on C5 and C6, and of 1..=2 agents
    // on P4 and the star K_{1,3}: protocol verdict must equal the gcd
    // oracle on all of them (135+ full protocol executions).
    let mut checked = 0usize;
    let cases: Vec<(qelect_graph::Graph, usize)> = vec![
        (families::cycle(5).unwrap(), 3),
        (families::cycle(6).unwrap(), 3),
        (families::path(4).unwrap(), 2),
        (families::star(3).unwrap(), 2),
    ];
    for (g, max_r) in cases {
        for r in 1..=max_r {
            for bc in Bicolored::all_placements(&g, r) {
                let expected = elect_succeeds(&bc);
                let report = run_election(&bc, &RunConfig::default()).unwrap().report;
                if expected {
                    assert!(
                        report.clean_election(),
                        "{:?}: {:?}",
                        bc.homebases(),
                        report.outcomes
                    );
                } else {
                    assert!(
                        report.unanimous_unsolvable(),
                        "{:?}: {:?}",
                        bc.homebases(),
                        report.outcomes
                    );
                }
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 86, "25 + 41 + 10 + 10 placements");
}

#[test]
fn gathering_inherits_election_verdicts() {
    use qelect::gathering::run_gather;
    for (label, bc) in suite() {
        let expected = elect_succeeds(&bc);
        let report = run_gather(&bc, RunConfig::default().to_gated());
        assert_eq!(
            report.clean_election(),
            expected,
            "{label}: {:?} ({:?})",
            report.outcomes,
            report.interrupted
        );
    }
}

#[test]
fn committed_c6_trace_replays_to_exactly_two_leaders() {
    // The §1.3 impossibility witness is a checked-in artifact: the
    // lockstep schedule under which both anonymous ring probers on C6
    // elect themselves. Strict replay must reproduce the double
    // election bit-for-bit — schedule, events, and verdict.
    use qelect_agentsim::AgentOutcome;
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/traces/c6_two_leaders.json"
    );
    let trace = Trace::load(path).expect("committed trace parses");
    assert_eq!(trace.agents, 2);
    assert_eq!(trace.nodes, 6);
    assert_eq!(trace.policy, "lockstep");

    let bc = Bicolored::new(families::cycle(6).unwrap(), &[0, 3]).unwrap();
    let report = qelect::replay::replay_ring_probe(&bc, &trace, true);
    let leaders = report
        .outcomes
        .iter()
        .filter(|o| **o == AgentOutcome::Leader)
        .count();
    assert_eq!(
        leaders, 2,
        "the committed witness must double-elect: {:?}",
        report.outcomes
    );
    assert!(!report.clean_election());
    assert_eq!(
        report.trace, trace.schedule,
        "replay re-records the committed schedule"
    );
    assert_eq!(report.events, trace.events, "and the committed event log");
}

#[test]
fn elect_work_scales_with_r_times_edges() {
    // Theorem 3.1's envelope, measured: work / (r·|E|) stays under a
    // fixed constant across sizes.
    let mut ratios = Vec::new();
    for n in [6usize, 8, 10, 12] {
        let bc = Bicolored::new(families::cycle(n).unwrap(), &[0, 1, 3]).unwrap();
        let report = run_election(&bc, &RunConfig::default()).unwrap().report;
        assert!(report.clean_election());
        let work = report.metrics.total_work() as f64;
        let re = (bc.r() * bc.graph().m()) as f64;
        ratios.push(work / re);
    }
    for r in &ratios {
        assert!(*r < 80.0, "constant blew up: {ratios:?}");
    }
}
